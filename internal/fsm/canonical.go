package fsm

import "encoding/binary"

// This file is the exported structural identity of a machine: a
// canonical byte encoding and a total order over machine structure.
// Both ignore Name — like blockHash, they describe only the
// simulation-relevant content (state count, start state, per-state
// outputs and transitions) — so two machines that predict identically
// on every trace compare equal no matter what they are called. The
// fitness memo keys on the canonical bytes (hashed together with the
// trace identity), the GA search dedups cohorts by them before
// compiling block tables, and sortByFitness uses the total order as its
// deterministic tie-break.

// AppendCanonical appends the machine's canonical structural encoding
// to b and returns the extended slice: state count, start state, then
// per state the output bit and both successors, all little-endian
// uint32 (output packed as one byte). The encoding is injective over
// valid machines — distinct structures never collide — and excludes
// Name, so renamed copies encode identically.
func (m *Machine) AppendCanonical(b []byte) []byte {
	n := len(m.Next)
	b = binary.LittleEndian.AppendUint32(b, uint32(n))
	b = binary.LittleEndian.AppendUint32(b, uint32(m.Start))
	for s := 0; s < n; s++ {
		o := byte(0)
		if m.Output[s] {
			o = 1
		}
		b = append(b, o)
		b = binary.LittleEndian.AppendUint32(b, uint32(m.Next[s][0]))
		b = binary.LittleEndian.AppendUint32(b, uint32(m.Next[s][1]))
	}
	return b
}

// CompareStructural orders machines by structural content (Name
// ignored): first by state count, then start state, then state by state
// the output bit and both successors. It returns -1, 0, or +1, and
// returns 0 exactly when the two machines are structurally identical —
// the property the search's deterministic tie-break and cohort dedup
// rely on.
func CompareStructural(a, b *Machine) int {
	if c := cmpInt(len(a.Next), len(b.Next)); c != 0 {
		return c
	}
	if c := cmpInt(a.Start, b.Start); c != 0 {
		return c
	}
	for s := range a.Next {
		ao, bo := 0, 0
		if a.Output[s] {
			ao = 1
		}
		if b.Output[s] {
			bo = 1
		}
		if c := cmpInt(ao, bo); c != 0 {
			return c
		}
		if c := cmpInt(a.Next[s][0], b.Next[s][0]); c != 0 {
			return c
		}
		if c := cmpInt(a.Next[s][1], b.Next[s][1]); c != 0 {
			return c
		}
	}
	return 0
}

func cmpInt(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}
