package workload

import (
	"math/rand"
	"testing"

	"fsmpredict/internal/trace"
)

func TestBranchSuiteNames(t *testing.T) {
	want := map[string]bool{
		"compress": true, "gs": true, "gsm": true,
		"g721": true, "ijpeg": true, "vortex": true,
	}
	suite := BranchSuite()
	if len(suite) != len(want) {
		t.Fatalf("suite size = %d, want %d", len(suite), len(want))
	}
	for _, p := range suite {
		if !want[p.Name] {
			t.Errorf("unexpected benchmark %q", p.Name)
		}
	}
}

func TestLoadSuiteNames(t *testing.T) {
	want := map[string]bool{"gcc": true, "go": true, "groff": true, "li": true, "perl": true}
	suite := LoadSuite()
	if len(suite) != len(want) {
		t.Fatalf("suite size = %d, want %d", len(suite), len(want))
	}
	for _, p := range suite {
		if !want[p.Name] {
			t.Errorf("unexpected benchmark %q", p.Name)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("ijpeg")
	if err != nil || p.Name != "ijpeg" {
		t.Fatalf("ByName(ijpeg) = %v, %v", p, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("expected error for unknown benchmark")
	}
	lp, err := LoadByName("gcc")
	if err != nil || lp.Name != "gcc" {
		t.Fatalf("LoadByName(gcc) = %v, %v", lp, err)
	}
	if _, err := LoadByName("nope"); err == nil {
		t.Error("expected error for unknown load benchmark")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, p := range BranchSuite() {
		a := p.Generate(Train, 5000)
		b := p.Generate(Train, 5000)
		if len(a) != len(b) {
			t.Fatalf("%s: nondeterministic length", p.Name)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: nondeterministic at %d", p.Name, i)
			}
		}
	}
	for _, p := range LoadSuite() {
		a := p.Generate(Train, 5000)
		b := p.Generate(Train, 5000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: nondeterministic load at %d", p.Name, i)
			}
		}
	}
}

func TestVariantsDiffer(t *testing.T) {
	for _, p := range BranchSuite() {
		a := p.Generate(Train, 2000)
		b := p.Generate(Test, 2000)
		same := 0
		n := min(len(a), len(b))
		for i := 0; i < n; i++ {
			if a[i].Taken == b[i].Taken {
				same++
			}
		}
		if same == n {
			t.Errorf("%s: train and test traces identical", p.Name)
		}
		// Same static structure: identical PC sets.
		pcs := func(es []trace.BranchEvent) map[uint64]bool {
			m := map[uint64]bool{}
			for _, e := range es {
				m[e.PC] = true
			}
			return m
		}
		pa, pb := pcs(a), pcs(b)
		if len(pa) != len(pb) {
			t.Errorf("%s: variant changed static branch count: %d vs %d", p.Name, len(pa), len(pb))
		}
		for pc := range pa {
			if !pb[pc] {
				t.Errorf("%s: PC %#x missing from test variant", p.Name, pc)
			}
		}
	}
}

func TestGenerateLength(t *testing.T) {
	p, _ := ByName("gsm")
	events := p.Generate(Train, 10000)
	if len(events) < 10000 || len(events) > 10200 {
		t.Fatalf("generated %d events, want ~10000", len(events))
	}
}

func TestCorrelationHoldsInTrace(t *testing.T) {
	// For vortex, site 2 copies site 0's outcome (global lag 2) with
	// 0.5% noise; verify the correlation is present in the raw trace.
	p, _ := ByName("vortex")
	events := p.Generate(Train, 50000)
	const base = 0x12006000
	match, total := 0, 0
	for i := 2; i < len(events); i++ {
		if events[i].PC == base+2*4 && events[i-2].PC == base {
			total++
			if events[i].Taken == events[i-2].Taken {
				match++
			}
		}
	}
	if total < 1000 {
		t.Fatalf("correlation pair occurs only %d times", total)
	}
	if rate := float64(match) / float64(total); rate < 0.97 {
		t.Errorf("correlation rate = %v, want >= 0.97", rate)
	}
}

func TestCompressRunLengthStructure(t *testing.T) {
	p, _ := ByName("compress")
	events := p.Generate(Train, 30000)
	const hard = 0x12001000
	// Extract the hard branch's local outcome string and check the run
	// structure cycles through the configured run lengths.
	var local []bool
	for _, e := range events {
		if e.PC == hard {
			local = append(local, e.Taken)
		}
	}
	if len(local) < 1000 {
		t.Fatal("hard branch underrepresented")
	}
	// Runs of 1s separated by single 0s, lengths cycling 1,2.
	var runs []int
	cur := 0
	for _, b := range local {
		if b {
			cur++
		} else {
			runs = append(runs, cur)
			cur = 0
		}
	}
	want := []int{1, 2, 1, 2}
	// Find the phase from the second run onwards (first may be partial).
	for i := 1; i+4 < len(runs) && i < 6; i++ {
		matched := false
		for phase := 0; phase < 4; phase++ {
			if runs[i] == want[phase] && runs[i+1] == want[(phase+1)%4] &&
				runs[i+2] == want[(phase+2)%4] && runs[i+3] == want[(phase+3)%4] {
				matched = true
				break
			}
		}
		if !matched {
			t.Fatalf("run lengths %v at %d do not follow cycle %v", runs[i:i+4], i, want)
		}
	}
}

func TestBiasedRates(t *testing.T) {
	p, _ := ByName("gs")
	events := p.Generate(Train, 60000)
	prof := trace.Profile(events)
	// Site 3 is biased 0.97.
	for _, e := range prof {
		if e.PC == 0x12002000+3*4 {
			if r := e.TakenRate(); r < 0.93 || r > 1.0 {
				t.Errorf("biased site rate = %v, want ~0.97", r)
			}
			return
		}
	}
	t.Fatal("biased site not found in profile")
}

func TestLoopSite(t *testing.T) {
	l := &Loop{Addr: 4, Trip: 4}
	env := &Env{Rng: rand.New(rand.NewSource(1))}
	var got []bool
	for i := 0; i < 8; i++ {
		got = l.Emit(env, got)
	}
	want := []bool{true, true, true, false, true, true, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("loop outcomes = %v, want %v", got, want)
		}
	}
	// Inline variant emits the whole burst at once.
	il := &Loop{Addr: 4, Trip: 3, Inline: true}
	burst := il.Emit(env, nil)
	if len(burst) != 3 || !burst[0] || !burst[1] || burst[2] {
		t.Fatalf("inline loop = %v, want [true true false]", burst)
	}
}

func TestPatternSite(t *testing.T) {
	p := &PatternSite{Addr: 8, Pattern: []bool{true, false, false}}
	env := &Env{Rng: rand.New(rand.NewSource(1))}
	var got []bool
	for i := 0; i < 6; i++ {
		got = p.Emit(env, got)
	}
	want := []bool{true, false, false, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pattern = %v, want %v", got, want)
		}
	}
}

func TestEnvLag(t *testing.T) {
	e := &Env{Rng: rand.New(rand.NewSource(1))}
	if e.Lag(1) {
		t.Error("Lag before any outcome should be false")
	}
	e.record(true)
	e.record(false)
	e.record(true)
	if !e.Lag(1) || e.Lag(2) || !e.Lag(3) {
		t.Errorf("lags = %v %v %v, want true false true", e.Lag(1), e.Lag(2), e.Lag(3))
	}
	if e.Lag(0) || e.Lag(99) {
		t.Error("out-of-range lags should be false")
	}
	// Ring wrap-around: last recorded is i=99 (false), then i=98 (true).
	for i := 0; i < 100; i++ {
		e.record(i%2 == 0)
	}
	if e.Lag(1) || !e.Lag(2) {
		t.Error("ring buffer wrap-around broken")
	}
}

func TestStridePatternCorrectnessShape(t *testing.T) {
	// Strides 8,8,40: a two-delta predictor locks onto 8, so successive
	// deltas 8,8,40 imply the actual stride equals 8 two times in three.
	s := &StridePattern{Addr: 4, Strides: []uint64{8, 8, 40}}
	env := &LoadEnv{Rng: rand.New(rand.NewSource(1))}
	prev := s.NextValue(env)
	counts := map[uint64]int{}
	for i := 0; i < 300; i++ {
		v := s.NextValue(env)
		counts[v-prev]++
		prev = v
	}
	if counts[8] != 200 || counts[40] != 100 {
		t.Fatalf("stride distribution = %v", counts)
	}
}

func TestRowWalkJumps(t *testing.T) {
	r := &RowWalk{Addr: 4, Stride: 8, Row: 5}
	env := &LoadEnv{Rng: rand.New(rand.NewSource(2))}
	var vals []uint64
	for i := 0; i < 20; i++ {
		vals = append(vals, r.NextValue(env))
	}
	// Within a row, strides are 8; across rows they are arbitrary.
	for i := 1; i < 5; i++ {
		if vals[i]-vals[i-1] != 8 {
			t.Fatalf("in-row stride broken at %d", i)
		}
	}
	if vals[5]-vals[4] == 8 {
		t.Log("row jump coincidentally stride 8; acceptable but unlikely")
	}
}

func TestPhasedLoad(t *testing.T) {
	p := &PhasedLoad{Addr: 4, GoodLen: 4, BadLen: 2, Stride: 8}
	env := &LoadEnv{Rng: rand.New(rand.NewSource(3))}
	var vals []uint64
	for i := 0; i < 12; i++ {
		vals = append(vals, p.NextValue(env))
	}
	// First phase is linear.
	for i := 1; i < 4; i++ {
		if vals[i]-vals[i-1] != 8 {
			t.Fatalf("good phase not linear at %d", i)
		}
	}
}

func TestVariantString(t *testing.T) {
	if Train.String() != "train" || Test.String() != "test" {
		t.Error("variant names wrong")
	}
}

func TestLoadVariantsDiffer(t *testing.T) {
	for _, p := range LoadSuite() {
		a := p.Generate(Train, 3000)
		b := p.Generate(Test, 3000)
		same := 0
		n := min(len(a), len(b))
		for i := 0; i < n; i++ {
			if a[i].Value == b[i].Value {
				same++
			}
		}
		if same == n {
			t.Errorf("%s: train and test load traces identical", p.Name)
		}
		pcs := func(es []trace.LoadEvent) map[uint64]bool {
			m := map[uint64]bool{}
			for _, e := range es {
				m[e.PC] = true
			}
			return m
		}
		pa, pb := pcs(a), pcs(b)
		if len(pa) != len(pb) {
			t.Errorf("%s: variant changed static load count", p.Name)
		}
	}
}
