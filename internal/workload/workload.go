// Package workload provides the synthetic benchmark suite that stands in
// for the paper's ATOM-profiled SPEC95 and MediaBench traces (§5). Each
// benchmark is a deterministic generator (seeded, reproducible) whose
// branch and load behaviour exhibits the structural properties the paper
// attributes to the corresponding program: strongly biased branches, loop
// branches, branches globally correlated with earlier branches (the §7.6
// pattern examples), run-length branches predictable only from local
// history (the compress case), and loads whose stride-predictability
// follows repeating patterns (the Figure 2 confidence workloads).
//
// Every benchmark supports two input variants — Train and Test — with
// different random seeds and jittered parameters but identical program
// structure, mirroring the paper's custom-same versus custom-diff
// methodology (§7.5): correlation structure survives an input change,
// exact bias values do not.
package workload

import (
	"fmt"
	"math/rand"

	"fsmpredict/internal/trace"
)

// Variant selects a benchmark input data set.
type Variant int

const (
	// Train is the input used to build models and custom predictors.
	Train Variant = iota
	// Test is a different input of the same program, used to measure
	// custom-diff results.
	Test
)

// String names the variant.
func (v Variant) String() string {
	if v == Test {
		return "test"
	}
	return "train"
}

func (v Variant) seed(base int64) int64 {
	if v == Test {
		return base*2654435761 + 99991
	}
	return base
}

// jitter perturbs a probability slightly on the Test input so the exact
// bias differs while the structure is unchanged.
func (v Variant) jitter(p float64, rng *rand.Rand) float64 {
	if v == Train {
		return p
	}
	q := p + (rng.Float64()-0.5)*0.06
	if q < 0.01 {
		q = 0.01
	}
	if q > 0.99 {
		q = 0.99
	}
	return q
}

// Env is the execution environment handed to branch sites: the random
// stream and the recent global outcome history.
type Env struct {
	Rng  *rand.Rand
	ring [64]bool
	n    int
}

// Lag returns the outcome of the k-th most recent emitted branch
// (Lag(1) is the immediately preceding branch). Before any branch has
// been emitted at that depth it returns false.
func (e *Env) Lag(k int) bool {
	if k < 1 || k > len(e.ring) || k > e.n {
		return false
	}
	return e.ring[(e.n-k)%len(e.ring)]
}

func (e *Env) record(outcome bool) {
	e.ring[e.n%len(e.ring)] = outcome
	e.n++
}

// Site is one static branch in a benchmark body. Emit is called once per
// body pass and returns the outcomes the site produces this pass (loop
// sites return several).
type Site interface {
	// PC is the site's static address.
	PC() uint64
	// Emit appends this pass's outcomes. Implementations must be
	// deterministic given the Env's random stream.
	Emit(e *Env, out []bool) []bool
}

// Program is a synthetic branch benchmark: a named body of sites executed
// cyclically.
type Program struct {
	// Name identifies the benchmark (e.g. "ijpeg").
	Name string
	// Seed is the base random seed; the variant derives its own.
	Seed int64
	// Build constructs the body for a variant. Sites may capture the
	// provided rng for parameter jitter but must draw runtime randomness
	// only from the Env.
	Build func(v Variant, rng *rand.Rand) []Site
}

// Generate produces at least n branch events (it completes the final body
// pass, so slightly more may be returned).
func (p *Program) Generate(v Variant, n int) []trace.BranchEvent {
	seed := v.seed(p.Seed)
	setup := rand.New(rand.NewSource(seed ^ 0x5eed))
	body := p.Build(v, setup)
	env := &Env{Rng: rand.New(rand.NewSource(seed))}
	events := make([]trace.BranchEvent, 0, n+16)
	var scratch []bool
	for len(events) < n {
		for _, s := range body {
			scratch = s.Emit(env, scratch[:0])
			for _, taken := range scratch {
				events = append(events, trace.BranchEvent{PC: s.PC(), Taken: taken})
				env.record(taken)
			}
		}
	}
	return events
}

// LoadEnv is the execution environment for load sites.
type LoadEnv struct {
	Rng *rand.Rand
}

// LoadSite is one static load in a value benchmark.
type LoadSite interface {
	// PC is the site's static address.
	PC() uint64
	// NextValue returns the value the load observes this pass.
	NextValue(e *LoadEnv) uint64
}

// LoadProgram is a synthetic value-prediction benchmark.
type LoadProgram struct {
	// Name identifies the benchmark (e.g. "gcc").
	Name string
	// Seed is the base random seed.
	Seed int64
	// Build constructs the load sites for a variant.
	Build func(v Variant, rng *rand.Rand) []LoadSite
}

// Generate produces at least n load events.
func (p *LoadProgram) Generate(v Variant, n int) []trace.LoadEvent {
	seed := v.seed(p.Seed)
	setup := rand.New(rand.NewSource(seed ^ 0x10ad))
	body := p.Build(v, setup)
	env := &LoadEnv{Rng: rand.New(rand.NewSource(seed))}
	events := make([]trace.LoadEvent, 0, n+16)
	for len(events) < n {
		for _, s := range body {
			events = append(events, trace.LoadEvent{PC: s.PC(), Value: s.NextValue(env)})
		}
	}
	return events
}

// ByName returns the named branch benchmark from BranchSuite.
func ByName(name string) (*Program, error) {
	for _, p := range BranchSuite() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown branch benchmark %q", name)
}

// LoadByName returns the named value benchmark from LoadSuite.
func LoadByName(name string) (*LoadProgram, error) {
	for _, p := range LoadSuite() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown load benchmark %q", name)
}
