package workload

import "math/rand"

// LoadSuite returns the five value-prediction benchmarks of §6.4, named
// after the programs whose confidence behaviour they model (gcc, go,
// groff, li, perl — the suite of [4]). Each mixes load classes whose
// stride-prediction correctness streams have different structure:
//
//   - StridePattern / short RowWalk loads: correctness follows short
//     repeating patterns (e.g. 110110…) that a history FSM captures
//     perfectly and a saturating counter cannot — the coverage gap of
//     Figure 2.
//   - long RowWalk / PhasedLoad: long correct runs with occasional
//     misses; counters and FSMs do comparably well.
//   - ChaseLoad / FlakyWalk: unpredictable, should be marked
//     unconfident by everything.
//
// The class mixture varies per program, but the pattern *shapes* recur
// across programs, which is what makes the paper's cross-training (§6.3)
// effective.
func LoadSuite() []*LoadProgram {
	return []*LoadProgram{
		gccLoads(),
		goLoads(),
		groffLoads(),
		liLoads(),
		perlLoads(),
	}
}

// FlakyWalk continues a linear walk with probability PGood and jumps to a
// random address otherwise — stride correctness is genuinely random.
type FlakyWalk struct {
	Addr  uint64
	PGood float64

	cur uint64
}

// PC returns the site address.
func (f *FlakyWalk) PC() uint64 { return f.Addr }

// NextValue advances or jumps.
func (f *FlakyWalk) NextValue(e *LoadEnv) uint64 {
	if e.Rng.Float64() < f.PGood {
		f.cur += 8
	} else {
		f.cur = uint64(e.Rng.Int63())
	}
	return f.cur
}

func gccLoads() *LoadProgram {
	const base = 0x40001000
	return &LoadProgram{
		Name: "gcc",
		Seed: 2001,
		Build: func(v Variant, rng *rand.Rand) []LoadSite {
			rowA, rowB := 6, 8
			if v == Test {
				rowA, rowB = 7, 8
			}
			return []LoadSite{
				&StridePattern{Addr: pcAt(base, 0), Strides: []uint64{8, 8, 40}},
				&StridePattern{Addr: pcAt(base, 1), Strides: []uint64{4, 4, 4, 12}},
				&RowWalk{Addr: pcAt(base, 2), Stride: 8, Row: rowA},
				&RowWalk{Addr: pcAt(base, 3), Stride: 16, Row: rowB},
				&ChaseLoad{Addr: pcAt(base, 4)},
				&FlakyWalk{Addr: pcAt(base, 5), PGood: v.jitter(0.3, rng)},
				&ConstantLoad{Addr: pcAt(base, 6), Value: 0xdead},
				&StridePattern{Addr: pcAt(base, 7), Strides: []uint64{8, 8, 8, 40}},
			}
		},
	}
}

func goLoads() *LoadProgram {
	const base = 0x40002000
	return &LoadProgram{
		Name: "go",
		Seed: 2002,
		Build: func(v Variant, rng *rand.Rand) []LoadSite {
			return []LoadSite{
				// go is pointer-heavy: plenty of unpredictable loads.
				&ChaseLoad{Addr: pcAt(base, 0)},
				&ChaseLoad{Addr: pcAt(base, 1)},
				&FlakyWalk{Addr: pcAt(base, 2), PGood: v.jitter(0.25, rng)},
				&StridePattern{Addr: pcAt(base, 3), Strides: []uint64{8, 8, 24}},
				&RowWalk{Addr: pcAt(base, 4), Stride: 8, Row: 6},
				&FlakyWalk{Addr: pcAt(base, 5), PGood: v.jitter(0.35, rng)},
				&ConstantLoad{Addr: pcAt(base, 6), Value: 42},
				&RowWalk{Addr: pcAt(base, 7), Stride: 4, Row: 5},
			}
		},
	}
}

func groffLoads() *LoadProgram {
	const base = 0x40003000
	return &LoadProgram{
		Name: "groff",
		Seed: 2003,
		Build: func(v Variant, rng *rand.Rand) []LoadSite {
			good := 30
			if v == Test {
				good = 26
			}
			return []LoadSite{
				&PhasedLoad{Addr: pcAt(base, 0), GoodLen: good, BadLen: 5, Stride: 8},
				&StridePattern{Addr: pcAt(base, 1), Strides: []uint64{8, 8, 40}},
				&RowWalk{Addr: pcAt(base, 2), Stride: 8, Row: 7},
				&ConstantLoad{Addr: pcAt(base, 3), Value: 7},
				&FlakyWalk{Addr: pcAt(base, 4), PGood: v.jitter(0.3, rng)},
				&StridePattern{Addr: pcAt(base, 5), Strides: []uint64{16, 16, 16, 48}},
				&RowWalk{Addr: pcAt(base, 6), Stride: 24, Row: 9},
			}
		},
	}
}

func liLoads() *LoadProgram {
	const base = 0x40004000
	return &LoadProgram{
		Name: "li",
		Seed: 2004,
		Build: func(v Variant, rng *rand.Rand) []LoadSite {
			return []LoadSite{
				// Lisp interpreter: cons-cell chasing plus small hot
				// arrays.
				&ChaseLoad{Addr: pcAt(base, 0)},
				&StridePattern{Addr: pcAt(base, 1), Strides: []uint64{8, 8, 16}},
				&RowWalk{Addr: pcAt(base, 2), Stride: 8, Row: 4},
				&ConstantLoad{Addr: pcAt(base, 3), Value: 1},
				&ConstantLoad{Addr: pcAt(base, 4), Value: 0},
				&FlakyWalk{Addr: pcAt(base, 5), PGood: v.jitter(0.2, rng)},
				&RowWalk{Addr: pcAt(base, 6), Stride: 16, Row: 6},
			}
		},
	}
}

func perlLoads() *LoadProgram {
	const base = 0x40005000
	return &LoadProgram{
		Name: "perl",
		Seed: 2005,
		Build: func(v Variant, rng *rand.Rand) []LoadSite {
			return []LoadSite{
				&StridePattern{Addr: pcAt(base, 0), Strides: []uint64{8, 8, 40}},
				&StridePattern{Addr: pcAt(base, 1), Strides: []uint64{4, 4, 4, 4, 20}},
				&PhasedLoad{Addr: pcAt(base, 2), GoodLen: 20, BadLen: 4, Stride: 8},
				&RowWalk{Addr: pcAt(base, 3), Stride: 8, Row: 8},
				&ChaseLoad{Addr: pcAt(base, 4)},
				&FlakyWalk{Addr: pcAt(base, 5), PGood: v.jitter(0.4, rng)},
				&RowWalk{Addr: pcAt(base, 6), Stride: 32, Row: 5},
				&ConstantLoad{Addr: pcAt(base, 7), Value: 0x5f5f},
			}
		},
	}
}
