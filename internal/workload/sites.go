package workload

// Branch site implementations. Each models one class of static branch
// behaviour observed in the paper's benchmarks.

// Biased is a branch taken with a fixed probability, independent of
// history — the common easy case a per-branch 2-bit counter handles.
type Biased struct {
	Addr uint64
	P    float64
}

// PC returns the site address.
func (b *Biased) PC() uint64 { return b.Addr }

// Emit draws one outcome.
func (b *Biased) Emit(e *Env, out []bool) []bool {
	return append(out, e.Rng.Float64() < b.P)
}

// Loop is a backward loop branch: taken Trip-1 times, then not-taken once
// per activation, like a counted inner loop.
type Loop struct {
	Addr uint64
	Trip int
	// Inline controls whether all Trip outcomes are emitted in one body
	// pass (a true inner loop) or one outcome per pass (an outer loop
	// observed once per iteration).
	Inline bool

	i int
}

// PC returns the site address.
func (l *Loop) PC() uint64 { return l.Addr }

// Emit produces the loop branch outcomes for one body pass.
func (l *Loop) Emit(e *Env, out []bool) []bool {
	if l.Inline {
		for k := 0; k < l.Trip-1; k++ {
			out = append(out, true)
		}
		return append(out, false)
	}
	l.i++
	if l.i >= l.Trip {
		l.i = 0
		return append(out, false)
	}
	return append(out, true)
}

// PatternSite replays a fixed repeating outcome pattern, modelling a
// deterministic periodic branch.
type PatternSite struct {
	Addr    uint64
	Pattern []bool

	i int
}

// PC returns the site address.
func (p *PatternSite) PC() uint64 { return p.Addr }

// Emit produces the next pattern element.
func (p *PatternSite) Emit(e *Env, out []bool) []bool {
	v := p.Pattern[p.i]
	p.i = (p.i + 1) % len(p.Pattern)
	return append(out, v)
}

// Corr is a branch whose outcome is a function of the global history —
// the globally correlated branches the custom FSM predictors capture
// (§7.6). Noise flips the outcome with the given probability, modelling
// data-dependent exceptions.
type Corr struct {
	Addr  uint64
	Fn    func(e *Env) bool
	Noise float64
}

// PC returns the site address.
func (c *Corr) PC() uint64 { return c.Addr }

// Emit evaluates the correlation function, possibly flipped by noise.
func (c *Corr) Emit(e *Env, out []bool) []bool {
	v := c.Fn(e)
	if c.Noise > 0 && e.Rng.Float64() < c.Noise {
		v = !v
	}
	return append(out, v)
}

// RunLength is a branch that stays taken for a run, goes not-taken once,
// then starts the next run, with run lengths cycling through Runs. Its
// behaviour is predictable from its own (local) history but looks
// irregular in the global stream — the compress case (§7.5).
type RunLength struct {
	Addr uint64
	Runs []int

	run int // index into Runs
	i   int // position within the current run
}

// PC returns the site address.
func (r *RunLength) PC() uint64 { return r.Addr }

// Emit produces the next run-length outcome.
func (r *RunLength) Emit(e *Env, out []bool) []bool {
	if r.i < r.Runs[r.run] {
		r.i++
		return append(out, true)
	}
	r.i = 0
	r.run = (r.run + 1) % len(r.Runs)
	return append(out, false)
}

// Load site implementations for the value-prediction benchmarks. What
// matters for confidence estimation is the *pattern of stride-prediction
// correctness* each class induces in a two-delta stride predictor.

// RowWalk walks an array with a fixed stride, jumping to a random new
// base every Row elements — stride prediction is correct inside a row and
// wrong at the jump (and while re-acquiring the stride).
type RowWalk struct {
	Addr   uint64
	Stride uint64
	Row    int

	cur uint64
	i   int
}

// PC returns the site address.
func (r *RowWalk) PC() uint64 { return r.Addr }

// NextValue advances the walk.
func (r *RowWalk) NextValue(e *LoadEnv) uint64 {
	if r.i == 0 {
		r.cur = uint64(e.Rng.Int63())
	}
	v := r.cur
	r.cur += r.Stride
	r.i++
	if r.i >= r.Row {
		r.i = 0
	}
	return v
}

// StridePattern produces values whose successive strides cycle through
// Strides. A two-delta predictor locks onto the most persistent stride,
// making correctness follow a repeating pattern — exactly the structure a
// history-based confidence FSM captures and a saturating counter cannot.
type StridePattern struct {
	Addr    uint64
	Strides []uint64

	cur uint64
	i   int
}

// PC returns the site address.
func (s *StridePattern) PC() uint64 { return s.Addr }

// NextValue applies the next stride in the cycle.
func (s *StridePattern) NextValue(e *LoadEnv) uint64 {
	v := s.cur
	s.cur += s.Strides[s.i]
	s.i = (s.i + 1) % len(s.Strides)
	return v
}

// ChaseLoad models pointer chasing: values are effectively random, so
// stride prediction almost never succeeds.
type ChaseLoad struct {
	Addr uint64
}

// PC returns the site address.
func (c *ChaseLoad) PC() uint64 { return c.Addr }

// NextValue draws a fresh pseudo-random value.
func (c *ChaseLoad) NextValue(e *LoadEnv) uint64 {
	return uint64(e.Rng.Int63())
}

// PhasedLoad alternates between a predictable linear phase and a chaotic
// phase, with the given phase lengths — confidence should ramp up and
// down with the phases.
type PhasedLoad struct {
	Addr    uint64
	GoodLen int
	BadLen  int
	Stride  uint64

	cur uint64
	i   int
}

// PC returns the site address.
func (p *PhasedLoad) PC() uint64 { return p.Addr }

// NextValue advances the phase machine.
func (p *PhasedLoad) NextValue(e *LoadEnv) uint64 {
	period := p.GoodLen + p.BadLen
	pos := p.i % period
	p.i++
	if pos < p.GoodLen {
		v := p.cur
		p.cur += p.Stride
		return v
	}
	p.cur = uint64(e.Rng.Int63())
	return p.cur
}

// ConstantLoad always loads the same value; stride prediction (stride 0)
// is correct after warm-up. The trivially confident case.
type ConstantLoad struct {
	Addr  uint64
	Value uint64
}

// PC returns the site address.
func (c *ConstantLoad) PC() uint64 { return c.Addr }

// NextValue returns the constant.
func (c *ConstantLoad) NextValue(e *LoadEnv) uint64 { return c.Value }
