package workload

import "math/rand"

// BranchSuite returns the six branch benchmarks of §7.5, named after the
// SPEC95 / MediaBench programs whose branch behaviour they model:
//
//   - compress: dominated by one run-length branch that is predictable
//     from local history but only partially from global history, so a
//     single custom FSM helps a lot and a local/global chooser eventually
//     wins (the paper's compress discussion).
//   - gs: almost entirely well-biased branches plus a couple of mildly
//     correlated ones (the Figure 7 patterns); small absolute gains.
//   - gsm, ijpeg: heavy global correlation keyed off data-dependent
//     branches; custom FSMs capture it in tiny area while tables dilute.
//   - g721: well-behaved baseline with one noisy correlated branch; the
//     paper reports only a small improvement (8% -> just over 7%).
//   - vortex: most mispredictions come from nearly-deterministic global
//     correlation, so the custom predictor removes almost all of them
//     (13% -> 3% in the paper).
//
// All bodies keep correlation lags at 9 or less, matching the paper's
// global history length for custom predictors (§7.3).
func BranchSuite() []*Program {
	return []*Program{
		compressProgram(),
		gsProgram(),
		gsmProgram(),
		g721Program(),
		ijpegProgram(),
		vortexProgram(),
	}
}

// pcAt assigns deterministic static addresses: one page per benchmark,
// one word per site.
func pcAt(base uint64, idx int) uint64 { return base + uint64(idx)*4 }

func compressProgram() *Program {
	const base = 0x12001000
	return &Program{
		Name: "compress",
		Seed: 1001,
		Build: func(v Variant, rng *rand.Rand) []Site {
			return []Site{
				// The dominant hard branch: short run-length structure
				// (cycle 1,0,1,1,0) that thrashes a 2-bit counter. Its
				// own outcomes appear at global lags 3, 6, 9, so a
				// global-history FSM recovers only part of the pattern
				// (one position per period stays ambiguous), while a
				// local-history predictor captures it completely — the
				// paper's compress discussion.
				&RunLength{Addr: pcAt(base, 0), Runs: []int{1, 2}},
				&Biased{Addr: pcAt(base, 1), P: v.jitter(0.92, rng)},
				&Biased{Addr: pcAt(base, 2), P: v.jitter(0.06, rng)},
			}
		},
	}
}

func gsProgram() *Program {
	const base = 0x12002000
	return &Program{
		Name: "gs",
		Seed: 1002,
		Build: func(v Variant, rng *rand.Rand) []Site {
			var sites []Site
			// A moderately biased data branch other branches key off.
			sites = append(sites, &Biased{Addr: pcAt(base, 0), P: v.jitter(0.78, rng)})
			// Figure 7 flavour: taken when the pattern 0x1x holds over
			// recent branches (site 0 two passes of lag structure back).
			sites = append(sites, &Corr{Addr: pcAt(base, 1), Noise: 0.02,
				Fn: func(e *Env) bool { return !e.Lag(1) && e.Lag(3) }})
			sites = append(sites, &Corr{Addr: pcAt(base, 2), Noise: 0.02,
				Fn: func(e *Env) bool { return e.Lag(2) }})
			// The long tail of well-predicted branches.
			// Site 14 (0.72) is the second data-dependent source feeding
			// site 1's Figure 7 pattern through Lag(3).
			biases := []float64{0.97, 0.03, 0.96, 0.05, 0.98, 0.04, 0.95,
				0.97, 0.02, 0.96, 0.03, 0.72, 0.05}
			for i, p := range biases {
				sites = append(sites, &Biased{Addr: pcAt(base, 3+i), P: v.jitter(p, rng)})
			}
			return sites
		},
	}
}

func gsmProgram() *Program {
	const base = 0x12003000
	return &Program{
		Name: "gsm",
		Seed: 1003,
		Build: func(v Variant, rng *rand.Rand) []Site {
			return []Site{
				// Data-dependent branch driving the correlation web.
				&Biased{Addr: pcAt(base, 0), P: v.jitter(0.5, rng)},
				&Biased{Addr: pcAt(base, 1), P: v.jitter(0.93, rng)},
				&Corr{Addr: pcAt(base, 2), Noise: 0.01,
					Fn: func(e *Env) bool { return e.Lag(2) }},
				&Biased{Addr: pcAt(base, 3), P: v.jitter(0.06, rng)},
				&Corr{Addr: pcAt(base, 4), Noise: 0.015,
					Fn: func(e *Env) bool { return !e.Lag(4) }},
				&Biased{Addr: pcAt(base, 5), P: v.jitter(0.94, rng)},
				&Corr{Addr: pcAt(base, 6), Noise: 0.01,
					Fn: func(e *Env) bool { return e.Lag(6) }},
				&Loop{Addr: pcAt(base, 7), Trip: 8},
				&Corr{Addr: pcAt(base, 8), Noise: 0.02,
					Fn: func(e *Env) bool { return e.Lag(8) != e.Lag(2) }},
				&Biased{Addr: pcAt(base, 9), P: v.jitter(0.92, rng)},
				&Corr{Addr: pcAt(base, 10), Noise: 0.015,
					Fn: func(e *Env) bool { return e.Lag(2) && e.Lag(4) }},
				&Biased{Addr: pcAt(base, 11), P: v.jitter(0.95, rng)},
			}
		},
	}
}

func g721Program() *Program {
	const base = 0x12004000
	return &Program{
		Name: "g721",
		Seed: 1004,
		Build: func(v Variant, rng *rand.Rand) []Site {
			var sites []Site
			biases := []float64{0.91, 0.88, 0.1, 0.9, 0.12, 0.89, 0.93, 0.08}
			for i, p := range biases {
				sites = append(sites, &Biased{Addr: pcAt(base, i), P: v.jitter(p, rng)})
			}
			sites = append(sites,
				&Loop{Addr: pcAt(base, 8), Trip: 5},
				&Loop{Addr: pcAt(base, 9), Trip: 6},
				// One noisy correlated branch: the paper reports only a
				// small custom gain for g721.
				&Biased{Addr: pcAt(base, 10), P: v.jitter(0.8, rng)},
				&Corr{Addr: pcAt(base, 11), Noise: 0.1,
					Fn: func(e *Env) bool { return e.Lag(1) }},
			)
			return sites
		},
	}
}

func ijpegProgram() *Program {
	const base = 0x12005000
	return &Program{
		Name: "ijpeg",
		Seed: 1005,
		Build: func(v Variant, rng *rand.Rand) []Site {
			return []Site{
				// The data-dependent comparison everything correlates
				// with (e.g. a coefficient sign test).
				&Biased{Addr: pcAt(base, 0), P: v.jitter(0.5, rng)},
				&Biased{Addr: pcAt(base, 1), P: v.jitter(0.95, rng)},
				&Corr{Addr: pcAt(base, 2), Noise: 0.02,
					Fn: func(e *Env) bool { return e.Lag(2) }},
				&Biased{Addr: pcAt(base, 3), P: v.jitter(0.9, rng)},
				&Biased{Addr: pcAt(base, 4), P: v.jitter(0.08, rng)},
				&Corr{Addr: pcAt(base, 5), Noise: 0.02,
					Fn: func(e *Env) bool { return e.Lag(5) }},
				&Biased{Addr: pcAt(base, 6), P: v.jitter(0.88, rng)},
				&Loop{Addr: pcAt(base, 7), Trip: 6},
				&Corr{Addr: pcAt(base, 8), Noise: 0.03,
					Fn: func(e *Env) bool { return !e.Lag(8) }},
				&Biased{Addr: pcAt(base, 9), P: v.jitter(0.93, rng)},
				&Biased{Addr: pcAt(base, 10), P: v.jitter(0.1, rng)},
				&Corr{Addr: pcAt(base, 11), Noise: 0.03,
					Fn: func(e *Env) bool { return e.Lag(9) && e.Lag(3) }},
				&Biased{Addr: pcAt(base, 12), P: v.jitter(0.97, rng)},
				&Biased{Addr: pcAt(base, 13), P: v.jitter(0.05, rng)},
				&Biased{Addr: pcAt(base, 14), P: v.jitter(0.85, rng)},
				&Biased{Addr: pcAt(base, 15), P: v.jitter(0.15, rng)},
			}
		},
	}
}

func vortexProgram() *Program {
	const base = 0x12006000
	return &Program{
		Name: "vortex",
		Seed: 1006,
		Build: func(v Variant, rng *rand.Rand) []Site {
			return []Site{
				&Biased{Addr: pcAt(base, 0), P: v.jitter(0.5, rng)},
				&Biased{Addr: pcAt(base, 1), P: v.jitter(0.98, rng)},
				// Nearly deterministic correlation: custom predictors
				// remove almost all vortex mispredictions (13% -> 3%).
				&Corr{Addr: pcAt(base, 2), Noise: 0.005,
					Fn: func(e *Env) bool { return e.Lag(2) }},
				&Biased{Addr: pcAt(base, 3), P: v.jitter(0.02, rng)},
				&Corr{Addr: pcAt(base, 4), Noise: 0.005,
					Fn: func(e *Env) bool { return !e.Lag(4) }},
				&Biased{Addr: pcAt(base, 5), P: v.jitter(0.97, rng)},
				&Corr{Addr: pcAt(base, 6), Noise: 0.01,
					Fn: func(e *Env) bool { return e.Lag(6) }},
				&Biased{Addr: pcAt(base, 7), P: v.jitter(0.03, rng)},
				&Corr{Addr: pcAt(base, 8), Noise: 0.01,
					Fn: func(e *Env) bool { return e.Lag(8) && e.Lag(2) }},
				&Biased{Addr: pcAt(base, 9), P: v.jitter(0.96, rng)},
				// Chained correlation: reaches the site-0 source through
				// site 8's copy, keeping lags within the history window.
				&Corr{Addr: pcAt(base, 10), Noise: 0.01,
					Fn: func(e *Env) bool { return e.Lag(2) != e.Lag(9) }},
				&Biased{Addr: pcAt(base, 11), P: v.jitter(0.98, rng)},
				&Biased{Addr: pcAt(base, 12), P: v.jitter(0.04, rng)},
				&Biased{Addr: pcAt(base, 13), P: v.jitter(0.97, rng)},
				&Biased{Addr: pcAt(base, 14), P: v.jitter(0.95, rng)},
				&Biased{Addr: pcAt(base, 15), P: v.jitter(0.02, rng)},
			}
		},
	}
}
