// Package experiments regenerates every figure of the paper's evaluation
// on the synthetic benchmark suite. Each figure has one entry point
// returning structured results; the cmd tools print them, the benchmarks
// time them, and the package tests assert the qualitative shapes the
// paper reports (who wins, by roughly what factor, where the crossovers
// fall). See DESIGN.md for the experiment index.
package experiments

// Config scales the experiments. The zero value is replaced by defaults
// sized like the paper's SimPoint traces; tests shrink them.
type Config struct {
	// BranchEvents is the branch-trace length per benchmark.
	BranchEvents int
	// LoadEvents is the load-trace length per value benchmark.
	LoadEvents int
	// MaxCustom is the number of custom FSM slots swept in Figure 5.
	MaxCustom int
	// Order is the global history length for custom branch predictors
	// (the paper uses 9 throughout, §7.3).
	Order int
	// Histories are the confidence FSM history lengths of Figure 2.
	Histories []int
	// TableLog2 sizes the stride value predictor (11 -> 2K entries).
	TableLog2 int
	// Workers bounds the fan-out of the embarrassingly parallel phases
	// (per-branch designs, per-history curves, per-machine synthesis,
	// per-area-point simulations). 0 means GOMAXPROCS; every experiment
	// produces bit-identical results for any worker count.
	Workers int
	// Adaptive routes the figure sweeps' exact result vectors through
	// the fidelity engine's content-addressed sweep memo (fitmemo.go):
	// repeated runs — paperrun grids, warm-started processes with a disk
	// tier — serve the custom-prefix and sampled-miss simulations from
	// cache instead of re-running them. Only exact full-fidelity vectors
	// enter the memo, so outputs are byte-identical with Adaptive on or
	// off; the paperrun golden test pins that.
	Adaptive bool
}

// DefaultConfig returns the paper-scale configuration.
func DefaultConfig() Config {
	return Config{
		BranchEvents: 250_000,
		LoadEvents:   120_000,
		MaxCustom:    16,
		Order:        9,
		Histories:    []int{2, 4, 6, 8, 10},
		TableLog2:    11,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.BranchEvents <= 0 {
		c.BranchEvents = d.BranchEvents
	}
	if c.LoadEvents <= 0 {
		c.LoadEvents = d.LoadEvents
	}
	if c.MaxCustom <= 0 {
		c.MaxCustom = d.MaxCustom
	}
	if c.Order <= 0 {
		c.Order = d.Order
	}
	if len(c.Histories) == 0 {
		c.Histories = d.Histories
	}
	if c.TableLog2 <= 0 {
		c.TableLog2 = d.TableLog2
	}
	return c
}
