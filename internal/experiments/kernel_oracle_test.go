package experiments

import (
	"reflect"
	"testing"

	"fsmpredict/internal/fsm"
)

// TestFiguresKernelOnOffIdentical is the figure-level oracle for the
// byte-blocked superstep kernel: every figure result must be
// byte-identical (reflect.DeepEqual over the full result structs, exact
// float equality included) with the kernel enabled and disabled. This
// pins the kernel's exactness end to end — trace generation, packing,
// training, replay, and statistics — not just per-kernel.
func TestFiguresKernelOnOffIdentical(t *testing.T) {
	cfg := Config{
		BranchEvents: 20_000,
		LoadEvents:   15_000,
		MaxCustom:    4,
		Order:        5,
		Histories:    []int{2, 4},
		TableLog2:    7,
		Workers:      1,
	}
	area := func(states int) float64 { return 12.5 * float64(states) }

	type run struct {
		name string
		do   func() (any, error)
	}
	runs := []run{
		{"figure2", func() (any, error) { return Figure2("gcc", cfg) }},
		{"figure4", func() (any, error) { return Figure4(cfg, 1.0) }},
		{"figure5", func() (any, error) { return Figure5("gsm", cfg, area) }},
		{"figure6", func() (any, error) { return Figure6(cfg) }},
		{"figure7", func() (any, error) { return Figure7(cfg) }},
	}
	// Both kernel toggles are axes: the span kernel must be invisible on
	// top of the block kernel, and the block toggle must still be exact
	// regardless of the span setting.
	for _, r := range runs {
		t.Run(r.name, func(t *testing.T) {
			on, err := r.do()
			if err != nil {
				t.Fatal(err)
			}
			prevSpan := fsm.SetSpanKernel(false)
			defer fsm.SetSpanKernel(prevSpan)
			spanOff, err := r.do()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(on, spanOff) {
				t.Fatalf("span kernel on/off results differ:\non:  %+v\noff: %+v", on, spanOff)
			}
			fsm.SetSpanKernel(prevSpan)
			prev := fsm.SetBlockKernel(false)
			defer fsm.SetBlockKernel(prev)
			off, err := r.do()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(on, off) {
				t.Fatalf("kernel on/off results differ:\non:  %+v\noff: %+v", on, off)
			}
		})
	}
}
