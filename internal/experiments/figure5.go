package experiments

import (
	"context"
	"fmt"

	"fsmpredict/internal/bpred"
	"fsmpredict/internal/par"
	"fsmpredict/internal/stats"
	"fsmpredict/internal/tracestore"
	"fsmpredict/internal/workload"
)

// Figure5Result holds one benchmark's misprediction-rate versus
// estimated-area comparison of the four architectures (§7.5).
type Figure5Result struct {
	Program string
	// XScale is the baseline's single operating point.
	XScale stats.Point
	// Gshare and LGC are size sweeps of the table-based predictors.
	Gshare stats.Series
	LGC    stats.Series
	// CustomSame and CustomDiff add one custom FSM at a time; Same is
	// trained and measured on the same input (the limit study), Diff is
	// trained on the Train input and measured on Test.
	CustomSame stats.Series
	CustomDiff stats.Series
	// Entries are the trained custom predictors in rank order.
	Entries []*bpred.CustomEntry
}

// GshareBits and LGCBits are the table-size sweeps of Figure 5.
var (
	GshareBits = []int{7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	LGCBits    = []int{5, 6, 7, 8, 9, 10, 11, 12, 13, 14}
)

// Figure5 reproduces one panel of Figure 5 for the named branch
// benchmark. fsmArea is the Figure 4 linear model; pass nil to use a
// freshly fitted one.
func Figure5(program string, cfg Config, fsmArea func(states int) float64) (*Figure5Result, error) {
	cfg = cfg.withDefaults()
	prog, err := workload.ByName(program)
	if err != nil {
		return nil, err
	}
	if fsmArea == nil {
		f4, err := Figure4(cfg, 1.0)
		if err != nil {
			return nil, err
		}
		fsmArea = f4.AreaModel()
	}

	// The packed traces come from the shared store: repeated Figure 5
	// runs (and the other experiments) reuse one generation per
	// (program, variant, length).
	train := tracestore.Shared.Branches(prog, workload.Train, cfg.BranchEvents)
	test := tracestore.Shared.Branches(prog, workload.Test, cfg.BranchEvents)

	res := &Figure5Result{Program: program}
	res.Gshare.Name, res.LGC.Name = "gshare", "lgc"
	res.CustomSame.Name, res.CustomDiff.Name = "custom-same", "custom-diff"

	// Baselines and table sweeps, measured on the test input in batched
	// single-pass groups.
	x := bpred.NewXScale()
	tablePreds := []bpred.Predictor{x}
	gshares := make([]*bpred.Gshare, len(GshareBits))
	for i, bits := range GshareBits {
		gshares[i] = bpred.NewGshare(bits)
		tablePreds = append(tablePreds, gshares[i])
	}
	lgcs := make([]*bpred.LGC, len(LGCBits))
	for i, bits := range LGCBits {
		lgcs[i] = bpred.NewLGC(bits)
		tablePreds = append(tablePreds, lgcs[i])
	}
	ctx := context.Background()
	tableResults, err := runAllChunked(ctx, cfg.Workers, tablePreds, test)
	if err != nil {
		return nil, err
	}
	res.XScale = stats.Point{X: x.Area(), Y: tableResults[0].MissRate()}
	for i, g := range gshares {
		res.Gshare.Points = append(res.Gshare.Points,
			stats.Point{X: g.Area(), Y: tableResults[1+i].MissRate()})
	}
	for i, l := range lgcs {
		res.LGC.Points = append(res.LGC.Points,
			stats.Point{X: l.Area(), Y: tableResults[1+len(gshares)+i].MissRate()})
	}

	// Custom predictors trained on the training input.
	entries, err := bpred.TrainCustomPacked(train, bpred.TrainOptions{
		MaxEntries:    cfg.MaxCustom,
		Order:         cfg.Order,
		MinExecutions: 64,
		Workers:       cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: figure5 %s: %v", program, err)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("experiments: figure5 %s: no custom entries", program)
	}
	res.Entries = entries

	// One area point per custom-predictor count. Under the update-all
	// policy every prefix of the entry set shares base and runner state,
	// so the whole sweep is two single-pass prefix simulations (train and
	// test input, run concurrently) instead of one pass per point — and
	// within each pass the per-entry blocked replays shard across the
	// configured workers. With cfg.Adaptive the sweep memo serves
	// repeated (trace, entry-set) runs without re-simulating.
	sweeps, err := par.MapSlice(ctx, 2, []*tracestore.Packed{train, test},
		func(_ int, tr *tracestore.Packed) ([]bpred.Result, error) {
			return prefixSweep(entries, tr, cfg.Workers, cfg.Adaptive), nil
		})
	if err != nil {
		return nil, err
	}
	sameResults, diffResults := sweeps[0], sweeps[1]
	for i := range entries {
		c := bpred.NewCustom(entries[:i+1])
		c.FSMArea = fsmArea
		res.CustomSame.Points = append(res.CustomSame.Points,
			stats.Point{X: c.Area(), Y: sameResults[i].MissRate()})
		res.CustomDiff.Points = append(res.CustomDiff.Points,
			stats.Point{X: c.Area(), Y: diffResults[i].MissRate()})
	}
	return res, nil
}

// runAllChunked batches predictors through bpred.RunAll in contiguous
// chunks, one per worker: within a chunk the trace is read once for all
// its predictors, across chunks the passes run concurrently. Predictors
// are independent, so the results are identical for any worker count.
func runAllChunked(ctx context.Context, workers int, preds []bpred.Predictor, tr *tracestore.Packed) ([]bpred.Result, error) {
	if len(preds) == 0 {
		return nil, nil
	}
	w := par.Workers(workers, len(preds))
	type span struct{ lo, hi int }
	chunks := make([]span, 0, w)
	for i := 0; i < w; i++ {
		lo, hi := i*len(preds)/w, (i+1)*len(preds)/w
		if lo < hi {
			chunks = append(chunks, span{lo, hi})
		}
	}
	out := make([]bpred.Result, len(preds))
	_, err := par.MapSlice(ctx, len(chunks), chunks,
		func(_ int, c span) (struct{}, error) {
			copy(out[c.lo:c.hi], bpred.RunAll(preds[c.lo:c.hi], tr))
			return struct{}{}, nil
		})
	return out, err
}

// Series returns all curves (and the baseline point) as named series.
func (r *Figure5Result) Series() []stats.Series {
	return []stats.Series{
		{Name: "xscale", Points: []stats.Point{r.XScale}},
		r.Gshare,
		r.LGC,
		r.CustomSame,
		r.CustomDiff,
	}
}

// BestAtOrBelow returns a series' lowest miss rate among points with area
// at most the given budget, and whether any point qualifies.
func BestAtOrBelow(s stats.Series, areaBudget float64) (float64, bool) {
	best, ok := 0.0, false
	for _, p := range s.Points {
		if p.X <= areaBudget && (!ok || p.Y < best) {
			best, ok = p.Y, true
		}
	}
	return best, ok
}

// MinMiss returns a series' lowest miss rate across all its points.
func MinMiss(s stats.Series) float64 {
	best := 1.0
	for _, p := range s.Points {
		if p.Y < best {
			best = p.Y
		}
	}
	return best
}
