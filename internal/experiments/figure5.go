package experiments

import (
	"context"
	"fmt"

	"fsmpredict/internal/bpred"
	"fsmpredict/internal/par"
	"fsmpredict/internal/stats"
	"fsmpredict/internal/workload"
)

// Figure5Result holds one benchmark's misprediction-rate versus
// estimated-area comparison of the four architectures (§7.5).
type Figure5Result struct {
	Program string
	// XScale is the baseline's single operating point.
	XScale stats.Point
	// Gshare and LGC are size sweeps of the table-based predictors.
	Gshare stats.Series
	LGC    stats.Series
	// CustomSame and CustomDiff add one custom FSM at a time; Same is
	// trained and measured on the same input (the limit study), Diff is
	// trained on the Train input and measured on Test.
	CustomSame stats.Series
	CustomDiff stats.Series
	// Entries are the trained custom predictors in rank order.
	Entries []*bpred.CustomEntry
}

// GshareBits and LGCBits are the table-size sweeps of Figure 5.
var (
	GshareBits = []int{7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	LGCBits    = []int{5, 6, 7, 8, 9, 10, 11, 12, 13, 14}
)

// Figure5 reproduces one panel of Figure 5 for the named branch
// benchmark. fsmArea is the Figure 4 linear model; pass nil to use a
// freshly fitted one.
func Figure5(program string, cfg Config, fsmArea func(states int) float64) (*Figure5Result, error) {
	cfg = cfg.withDefaults()
	prog, err := workload.ByName(program)
	if err != nil {
		return nil, err
	}
	if fsmArea == nil {
		f4, err := Figure4(cfg, 1.0)
		if err != nil {
			return nil, err
		}
		fsmArea = f4.AreaModel()
	}

	train := prog.Generate(workload.Train, cfg.BranchEvents)
	test := prog.Generate(workload.Test, cfg.BranchEvents)

	res := &Figure5Result{Program: program}
	res.Gshare.Name, res.LGC.Name = "gshare", "lgc"
	res.CustomSame.Name, res.CustomDiff.Name = "custom-same", "custom-diff"

	// Baselines, measured on the test input.
	x := bpred.NewXScale()
	xr := bpred.Run(x, test)
	res.XScale = stats.Point{X: x.Area(), Y: xr.MissRate()}

	ctx := context.Background()
	res.Gshare.Points, err = par.MapSlice(ctx, cfg.Workers, GshareBits,
		func(_ int, bits int) (stats.Point, error) {
			g := bpred.NewGshare(bits)
			r := bpred.Run(g, test)
			return stats.Point{X: g.Area(), Y: r.MissRate()}, nil
		})
	if err != nil {
		return nil, err
	}
	res.LGC.Points, err = par.MapSlice(ctx, cfg.Workers, LGCBits,
		func(_ int, bits int) (stats.Point, error) {
			l := bpred.NewLGC(bits)
			r := bpred.Run(l, test)
			return stats.Point{X: l.Area(), Y: r.MissRate()}, nil
		})
	if err != nil {
		return nil, err
	}

	// Custom predictors trained on the training input.
	entries, err := bpred.TrainCustom(train, bpred.TrainOptions{
		MaxEntries:    cfg.MaxCustom,
		Order:         cfg.Order,
		MinExecutions: 64,
		Workers:       cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: figure5 %s: %v", program, err)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("experiments: figure5 %s: no custom entries", program)
	}
	res.Entries = entries

	// One area point per custom-predictor count; each point simulates an
	// independent Custom instance, so the sweep fans out across workers.
	type samediff struct{ same, diff stats.Point }
	points, err := par.Map(ctx, cfg.Workers, len(entries),
		func(i int) (samediff, error) {
			m := i + 1
			same := bpred.NewCustom(entries[:m])
			same.FSMArea = fsmArea
			sr := bpred.Run(same, train)

			diff := bpred.NewCustom(entries[:m])
			diff.FSMArea = fsmArea
			dr := bpred.Run(diff, test)
			return samediff{
				same: stats.Point{X: same.Area(), Y: sr.MissRate()},
				diff: stats.Point{X: diff.Area(), Y: dr.MissRate()},
			}, nil
		})
	if err != nil {
		return nil, err
	}
	for _, p := range points {
		res.CustomSame.Points = append(res.CustomSame.Points, p.same)
		res.CustomDiff.Points = append(res.CustomDiff.Points, p.diff)
	}
	return res, nil
}

// Series returns all curves (and the baseline point) as named series.
func (r *Figure5Result) Series() []stats.Series {
	return []stats.Series{
		{Name: "xscale", Points: []stats.Point{r.XScale}},
		r.Gshare,
		r.LGC,
		r.CustomSame,
		r.CustomDiff,
	}
}

// BestAtOrBelow returns a series' lowest miss rate among points with area
// at most the given budget, and whether any point qualifies.
func BestAtOrBelow(s stats.Series, areaBudget float64) (float64, bool) {
	best, ok := 0.0, false
	for _, p := range s.Points {
		if p.X <= areaBudget && (!ok || p.Y < best) {
			best, ok = p.Y, true
		}
	}
	return best, ok
}

// MinMiss returns a series' lowest miss rate across all its points.
func MinMiss(s stats.Series) float64 {
	best := 1.0
	for _, p := range s.Points {
		if p.Y < best {
			best = p.Y
		}
	}
	return best
}
