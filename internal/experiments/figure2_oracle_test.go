package experiments

import (
	"testing"

	"fsmpredict/internal/confidence"
	"fsmpredict/internal/markov"
	"fsmpredict/internal/tracestore"
	"fsmpredict/internal/workload"
)

// TestFigure2MatchesLegacyPipeline is the experiments-layer differential
// oracle for the fold-once rewrite: the production Figure2 (shared
// correctness streams + one wide profile + CrossTrain + FoldTo) must
// reproduce, tally for tally, what the original per-history pipeline
// computed — re-profiling every peer at every history length and
// re-simulating the stride predictor for every evaluation.
func TestFigure2MatchesLegacyPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("legacy figure2 pipeline is slow")
	}
	cfg := Config{LoadEvents: 20000, Histories: []int{2, 5, 8}, TableLog2: 7, Workers: 1}
	const program = "li"

	got, err := Figure2(program, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Legacy computation, straight from the load traces.
	full := cfg.withDefaults()
	target, err := workload.LoadByName(program)
	if err != nil {
		t.Fatal(err)
	}
	evalLoads := tracestore.Shared.Loads(target, workload.Test, full.LoadEvents)
	wantSUD := confidence.SUDSweep(evalLoads, full.TableLog2)
	if len(got.SUD) != len(wantSUD) {
		t.Fatalf("SUD sweep lengths differ: %d vs %d", len(got.SUD), len(wantSUD))
	}
	for i := range wantSUD {
		if got.SUD[i].Config != wantSUD[i].Config || got.SUD[i].Result != wantSUD[i].Result {
			t.Fatalf("SUD point %d differs: %+v vs %+v", i, got.SUD[i], wantSUD[i])
		}
	}

	for _, h := range full.Histories {
		model := markov.New(h)
		for _, p := range workload.LoadSuite() {
			if p.Name == program {
				continue
			}
			loads := tracestore.Shared.Loads(p, workload.Train, full.LoadEvents)
			if err := model.Merge(confidence.PerEntryCorrectnessModel(loads, full.TableLog2, h)); err != nil {
				t.Fatal(err)
			}
		}
		want, err := confidence.FSMCurve(model, confidence.DefaultThresholds(), evalLoads, full.TableLog2)
		if err != nil {
			t.Fatal(err)
		}
		curve := got.Curves[h]
		if len(curve) != len(want) {
			t.Fatalf("h=%d: curve lengths differ: %d vs %d", h, len(curve), len(want))
		}
		for i := range want {
			if curve[i].Threshold != want[i].Threshold || curve[i].Result != want[i].Result {
				t.Fatalf("h=%d point %d differs:\nfold-once: %+v\nlegacy:    %+v",
					h, i, curve[i].Result, want[i].Result)
			}
			if curve[i].Machine.NumStates() != want[i].Machine.NumStates() {
				t.Fatalf("h=%d point %d machine sizes differ: %d vs %d",
					h, i, curve[i].Machine.NumStates(), want[i].Machine.NumStates())
			}
		}
	}
}
