package experiments

import (
	"fmt"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/core"
	"fsmpredict/internal/fsm"
	"fsmpredict/internal/markov"
	"fsmpredict/internal/tracestore"
	"fsmpredict/internal/workload"
)

// ExampleMachine is one of the paper's custom FSM showcases (Figures 6
// and 7): the branch it was built for, the minimized pattern cover it
// captures, and the machine itself.
type ExampleMachine struct {
	Program string
	PC      uint64
	Order   int
	Cover   []bitseq.Cube
	Machine *fsm.Machine
}

// designFor profiles the benchmark and designs an FSM for one branch at
// the given history length, reading only the branch's packed substream
// from the shared trace store.
func designFor(program string, pc uint64, order, events int) (*ExampleMachine, error) {
	prog, err := workload.ByName(program)
	if err != nil {
		return nil, err
	}
	packed := tracestore.Shared.Branches(prog, workload.Train, events)
	model := markov.New(order)
	if id, ok := packed.IDOf(pc); ok {
		model = packed.GlobalModels([]int32{id}, order)[0]
	}
	design, err := core.FromModel(model, core.Options{
		Name: fmt.Sprintf("%s_%#x", program, pc),
	})
	if err != nil {
		return nil, err
	}
	return &ExampleMachine{
		Program: program,
		PC:      pc,
		Order:   order,
		Cover:   design.Cover,
		Machine: design.Machine,
	}, nil
}

// Figure6 designs the simple ijpeg example: a branch correlated with the
// branch two back in the global history. At history length 2 its cover
// is the single pattern "1x" and the machine has four states, exactly as
// in the paper's Figure 6.
func Figure6(cfg Config) (*ExampleMachine, error) {
	cfg = cfg.withDefaults()
	const pc = 0x12005000 + 2*4 // ijpeg site 2: outcome = Lag(2)
	return designFor("ijpeg", pc, 2, cfg.BranchEvents)
}

// Figure7 designs the richer gs example: a branch whose outcome is a
// two-condition function of the global history (the paper's machine
// captures "0x1x | 0xx1x"). At history length 4 the gs site computes
// !Lag(1) && Lag(3), giving the analogous two-literal pattern "x1x0".
func Figure7(cfg Config) (*ExampleMachine, error) {
	cfg = cfg.withDefaults()
	const pc = 0x12002000 + 1*4 // gs site 1: !Lag(1) && Lag(3)
	return designFor("gs", pc, 4, cfg.BranchEvents)
}

// CapturesFromAnyState verifies the paper's §7.6 property for an example
// machine: starting in ANY state, feeding any Order-length history ends
// in a state whose prediction equals the cover's match of that history.
// It returns the first violating (state, history) pair, or ok.
func (e *ExampleMachine) CapturesFromAnyState() (state int, history uint32, ok bool) {
	m := e.Machine
	for s := 0; s < m.NumStates(); s++ {
		for h := uint32(0); h < 1<<uint(e.Order); h++ {
			cur := s
			for i := e.Order - 1; i >= 0; i-- {
				cur = m.Step(cur, h>>uint(i)&1 == 1)
			}
			if m.Output[cur] != bitseq.CoverMatches(e.Cover, h) {
				return s, h, false
			}
		}
	}
	return 0, 0, true
}
