package experiments

import (
	"testing"

	"fsmpredict/internal/bpred"
	"fsmpredict/internal/stats"
	"fsmpredict/internal/workload"
)

// TestFigure5MatchesUnpackedOracle is the end-to-end differential test
// for the packed simulation substrate: every Figure 5 point — baseline,
// both table sweeps, and both custom sweeps — must be byte-identical
// (exact float equality) to the pre-tracestore computation, which ran
// bpred.Run per predictor over freshly generated []BranchEvent slices.
func TestFigure5MatchesUnpackedOracle(t *testing.T) {
	cfg := Config{
		BranchEvents: 20_000,
		MaxCustom:    4,
		Order:        5,
	}
	area := func(states int) float64 { return 12.5 * float64(states) }
	for _, program := range []string{"gsm", "vortex"} {
		res, err := Figure5(program, cfg, area)
		if err != nil {
			t.Fatal(err)
		}

		prog, err := workload.ByName(program)
		if err != nil {
			t.Fatal(err)
		}
		cfgd := cfg.withDefaults()
		train := prog.Generate(workload.Train, cfgd.BranchEvents)
		test := prog.Generate(workload.Test, cfgd.BranchEvents)

		assertPoint := func(name string, got stats.Point, wantX, wantY float64) {
			t.Helper()
			if got.X != wantX || got.Y != wantY {
				t.Errorf("%s/%s: packed (%v, %v), oracle (%v, %v)",
					program, name, got.X, got.Y, wantX, wantY)
			}
		}

		x := bpred.NewXScale()
		xr := bpred.Run(x, test)
		assertPoint("xscale", res.XScale, x.Area(), xr.MissRate())

		for i, bits := range GshareBits {
			g := bpred.NewGshare(bits)
			r := bpred.Run(g, test)
			assertPoint("gshare", res.Gshare.Points[i], g.Area(), r.MissRate())
		}
		for i, bits := range LGCBits {
			l := bpred.NewLGC(bits)
			r := bpred.Run(l, test)
			assertPoint("lgc", res.LGC.Points[i], l.Area(), r.MissRate())
		}

		// Training equality (packed vs event-slice) is asserted in
		// bpred's oracle test; here the trained entries seed the oracle
		// sweep so the simulation path is what is compared.
		if len(res.Entries) == 0 {
			t.Fatalf("%s: no entries", program)
		}
		for m := 1; m <= len(res.Entries); m++ {
			same := bpred.NewCustom(res.Entries[:m])
			same.FSMArea = area
			sr := bpred.Run(same, train)
			assertPoint("custom-same", res.CustomSame.Points[m-1], same.Area(), sr.MissRate())

			diff := bpred.NewCustom(res.Entries[:m])
			diff.FSMArea = area
			dr := bpred.Run(diff, test)
			assertPoint("custom-diff", res.CustomDiff.Points[m-1], diff.Area(), dr.MissRate())
		}
	}
}

// TestStoreReuseAcrossExperiments checks that repeated experiment runs
// share generated traces: a second Figure 5 run at the same scale must
// add no new entries to the shared store.
func TestStoreReuseAcrossExperiments(t *testing.T) {
	cfg := Config{BranchEvents: 15_000, MaxCustom: 2, Order: 4}
	area := func(states int) float64 { return 10 * float64(states) }
	if _, err := Figure5("gs", cfg, area); err != nil {
		t.Fatal(err)
	}
	a, err := Figure5("gs", cfg, area)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure5("gs", cfg, area)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.CustomDiff.Points {
		if a.CustomDiff.Points[i] != b.CustomDiff.Points[i] {
			t.Fatalf("repeated runs disagree at point %d", i)
		}
	}
	if a.XScale != b.XScale {
		t.Fatal("repeated runs disagree on the baseline")
	}
}
