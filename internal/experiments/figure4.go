package experiments

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"

	"fsmpredict/internal/bpred"
	"fsmpredict/internal/fsm"
	"fsmpredict/internal/par"
	"fsmpredict/internal/stats"
	"fsmpredict/internal/tracestore"
	"fsmpredict/internal/vhdl"
	"fsmpredict/internal/workload"
)

// Figure4Result holds the synthesized area versus state count of a
// sample of generated FSM predictors, plus the fitted linear area bound
// the rest of the experiments use (§7.4).
//
// As in the paper, most machines sit on a linear trend while some large
// but highly regular machines optimize far below it; the fit follows the
// linear bulk (a trimmed least squares) so it can serve as the paper's
// conservative area bound.
type Figure4Result struct {
	// Points are all (states, gate-equivalent area) samples.
	Points []stats.Point
	// MissRates[i] is sampled machine i's training miss rate, scored in
	// the paper's update-all replay (§7.3): the machine advances on
	// every global outcome of its program trace and is scored at its
	// own branch's positions. The whole sample is scored in one fleet
	// pass per program, so the synthesis figure also reports how well
	// each synthesized predictor actually predicts.
	MissRates []float64
	// Kept are the samples the trimmed fit retained (the linear bulk).
	Kept []stats.Point
	// Fit is the least-squares line through Kept.
	Fit stats.Fit
}

// Figure4 generates custom FSM predictors across all branch benchmarks,
// synthesizes a sample of them with the gate-level model (the Synopsys
// stand-in), and fits the linear area/state relationship. sampleFrac
// mirrors the paper's 10% random sample; pass 1.0 to synthesize all.
func Figure4(cfg Config, sampleFrac float64) (*Figure4Result, error) {
	cfg = cfg.withDefaults()
	if sampleFrac <= 0 || sampleFrac > 1 {
		sampleFrac = 0.1
	}
	var all []sampledEntry
	for _, prog := range workload.BranchSuite() {
		packed := tracestore.Shared.Branches(prog, workload.Train, cfg.BranchEvents)
		entries, err := bpred.TrainCustomPacked(packed, bpred.TrainOptions{
			MaxEntries:    cfg.MaxCustom,
			Order:         cfg.Order,
			MinExecutions: 64,
			Workers:       cfg.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: figure4 %s: %v", prog.Name, err)
		}
		for _, e := range entries {
			all = append(all, sampledEntry{entry: e, packed: packed})
		}
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("experiments: figure4 produced no machines")
	}

	// Draw the random sample sequentially (one rng stream, machine order),
	// then synthesize the chosen machines in parallel.
	rng := rand.New(rand.NewSource(97))
	sampled := make([]sampledEntry, 0, len(all))
	for _, e := range all {
		if sampleFrac < 1 && rng.Float64() >= sampleFrac {
			continue
		}
		sampled = append(sampled, e)
	}
	if len(sampled) < 2 {
		// Sampling left too few points; use everything.
		sampled = all
	}
	points, err := par.MapSlice(context.Background(), cfg.Workers, sampled,
		func(_ int, e sampledEntry) (stats.Point, error) {
			area, err := vhdl.EstimateArea(e.entry.Machine)
			if err != nil {
				return stats.Point{}, err
			}
			return stats.Point{X: float64(e.entry.Machine.NumStates()), Y: area}, nil
		})
	if err != nil {
		return nil, err
	}
	res := &Figure4Result{Points: points, MissRates: customMissRates(sampled, cfg.Adaptive)}
	if err := res.fitTrimmed(); err != nil {
		return nil, err
	}
	return res, nil
}

// sampledEntry pairs a trained custom predictor with the packed program
// trace it was trained on, so the synthesis sample can be scored
// against the right outcome stream.
type sampledEntry struct {
	entry  *bpred.CustomEntry
	packed *tracestore.Packed
}

// customMissRates scores every sampled machine over its program's
// training trace in the update-all replay. Machines are grouped by
// program and each group runs as ONE fleet pass (one trace read for the
// whole group) when the block kernel is on; with the kernel off each
// machine replays through the scalar bit-at-a-time oracle, and the two
// paths are bit-identical (the figure-level kernel on/off test covers
// this field like every other). With adaptive on, each group's exact
// result vector is served from the sweep memo on repeats — legal
// precisely because the two simulation paths agree bit for bit.
func customMissRates(sampled []sampledEntry, adaptive bool) []float64 {
	rates := make([]float64, len(sampled))
	groups := make(map[*tracestore.Packed][]int)
	var order []*tracestore.Packed
	for i, s := range sampled {
		if _, ok := groups[s.packed]; !ok {
			order = append(order, s.packed)
		}
		groups[s.packed] = append(groups[s.packed], i)
	}
	for _, p := range order {
		idxs := groups[p]
		var mkey []byte
		if adaptive {
			var tag [8]byte
			for _, i := range idxs {
				binary.LittleEndian.PutUint64(tag[:], sampled[i].entry.Tag)
				mkey = append(mkey, tag[:]...)
				mkey = sampled[i].entry.Machine.AppendCanonical(mkey)
			}
		}
		hit, grp := lookupSampledMisses(p, mkey, len(idxs), adaptive)
		if hit != nil {
			for k, i := range idxs {
				if hit[k].Total > 0 {
					rates[i] = hit[k].MissRate()
				}
			}
			continue
		}
		words, n := p.Outcomes().Words(), p.Len()
		machines := make([]*fsm.Machine, len(idxs))
		pos := make([][]int32, len(idxs))
		for k, i := range idxs {
			machines[k] = sampled[i].entry.Machine
			if id, ok := p.IDOf(sampled[i].entry.Tag); ok {
				pos[k] = p.SubOf(id).Pos
			}
		}
		var misses []int
		if fsm.BlockKernelEnabled() {
			if fl, err := fsm.NewFleet(machines); err == nil {
				misses = fl.RunSampled(words, n, pos)
			}
		}
		if misses == nil {
			misses = make([]int, len(machines))
			for k, m := range machines {
				misses[k], _ = m.RunSampledScalar(m.Start, words, n, pos[k])
			}
		}
		if adaptive {
			v := make([]fsm.SimResult, len(idxs))
			for k := range idxs {
				v[k] = fsm.SimResult{Total: len(pos[k]), Correct: len(pos[k]) - misses[k]}
			}
			grp.store(v)
		}
		for k, i := range idxs {
			if len(pos[k]) > 0 {
				rates[i] = float64(misses[k]) / float64(len(pos[k]))
			}
		}
	}
	return rates
}

// fitTrimmed fits the linear bulk: a robust Theil–Sen line locates the
// trend despite the regular-machine outliers; points far below it (the
// paper's "highly regular" large machines whose synthesized area beats
// the trend) are set aside, and ordinary least squares on the remainder
// gives the reported line.
func (r *Figure4Result) fitTrimmed() error {
	base, err := stats.TheilSen(r.Points)
	if err != nil {
		return err
	}
	var kept []stats.Point
	for _, p := range r.Points {
		pred := base.At(p.X)
		if pred > 40 && p.Y < 0.5*pred {
			continue // regular machine, far below the trend
		}
		kept = append(kept, p)
	}
	if len(kept) < 2 {
		kept = r.Points
	}
	r.Kept = kept
	fit, err := stats.LinearFit(kept)
	if err != nil {
		return err
	}
	r.Fit = fit
	return nil
}

// AreaModel converts the fit into the conservative estimator used by
// Figure 5: a linear bound on area by state count, floored at the
// smallest sampled area.
func (r *Figure4Result) AreaModel() func(states int) float64 {
	minArea := r.Points[0].Y
	for _, p := range r.Points {
		if p.Y < minArea {
			minArea = p.Y
		}
	}
	fit := r.Fit
	return func(states int) float64 {
		a := fit.At(float64(states))
		if a < minArea {
			return minArea
		}
		return a
	}
}
