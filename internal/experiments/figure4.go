package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"fsmpredict/internal/bpred"
	"fsmpredict/internal/par"
	"fsmpredict/internal/stats"
	"fsmpredict/internal/tracestore"
	"fsmpredict/internal/vhdl"
	"fsmpredict/internal/workload"
)

// Figure4Result holds the synthesized area versus state count of a
// sample of generated FSM predictors, plus the fitted linear area bound
// the rest of the experiments use (§7.4).
//
// As in the paper, most machines sit on a linear trend while some large
// but highly regular machines optimize far below it; the fit follows the
// linear bulk (a trimmed least squares) so it can serve as the paper's
// conservative area bound.
type Figure4Result struct {
	// Points are all (states, gate-equivalent area) samples.
	Points []stats.Point
	// Kept are the samples the trimmed fit retained (the linear bulk).
	Kept []stats.Point
	// Fit is the least-squares line through Kept.
	Fit stats.Fit
}

// Figure4 generates custom FSM predictors across all branch benchmarks,
// synthesizes a sample of them with the gate-level model (the Synopsys
// stand-in), and fits the linear area/state relationship. sampleFrac
// mirrors the paper's 10% random sample; pass 1.0 to synthesize all.
func Figure4(cfg Config, sampleFrac float64) (*Figure4Result, error) {
	cfg = cfg.withDefaults()
	if sampleFrac <= 0 || sampleFrac > 1 {
		sampleFrac = 0.1
	}
	var all []*bpred.CustomEntry
	for _, prog := range workload.BranchSuite() {
		packed := tracestore.Shared.Branches(prog, workload.Train, cfg.BranchEvents)
		entries, err := bpred.TrainCustomPacked(packed, bpred.TrainOptions{
			MaxEntries:    cfg.MaxCustom,
			Order:         cfg.Order,
			MinExecutions: 64,
			Workers:       cfg.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: figure4 %s: %v", prog.Name, err)
		}
		all = append(all, entries...)
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("experiments: figure4 produced no machines")
	}

	// Draw the random sample sequentially (one rng stream, machine order),
	// then synthesize the chosen machines in parallel.
	rng := rand.New(rand.NewSource(97))
	sampled := make([]*bpred.CustomEntry, 0, len(all))
	for _, e := range all {
		if sampleFrac < 1 && rng.Float64() >= sampleFrac {
			continue
		}
		sampled = append(sampled, e)
	}
	if len(sampled) < 2 {
		// Sampling left too few points; use everything.
		sampled = all
	}
	points, err := par.MapSlice(context.Background(), cfg.Workers, sampled,
		func(_ int, e *bpred.CustomEntry) (stats.Point, error) {
			area, err := vhdl.EstimateArea(e.Machine)
			if err != nil {
				return stats.Point{}, err
			}
			return stats.Point{X: float64(e.Machine.NumStates()), Y: area}, nil
		})
	if err != nil {
		return nil, err
	}
	res := &Figure4Result{Points: points}
	if err := res.fitTrimmed(); err != nil {
		return nil, err
	}
	return res, nil
}

// fitTrimmed fits the linear bulk: a robust Theil–Sen line locates the
// trend despite the regular-machine outliers; points far below it (the
// paper's "highly regular" large machines whose synthesized area beats
// the trend) are set aside, and ordinary least squares on the remainder
// gives the reported line.
func (r *Figure4Result) fitTrimmed() error {
	base, err := stats.TheilSen(r.Points)
	if err != nil {
		return err
	}
	var kept []stats.Point
	for _, p := range r.Points {
		pred := base.At(p.X)
		if pred > 40 && p.Y < 0.5*pred {
			continue // regular machine, far below the trend
		}
		kept = append(kept, p)
	}
	if len(kept) < 2 {
		kept = r.Points
	}
	r.Kept = kept
	fit, err := stats.LinearFit(kept)
	if err != nil {
		return err
	}
	r.Fit = fit
	return nil
}

// AreaModel converts the fit into the conservative estimator used by
// Figure 5: a linear bound on area by state count, floored at the
// smallest sampled area.
func (r *Figure4Result) AreaModel() func(states int) float64 {
	minArea := r.Points[0].Y
	for _, p := range r.Points {
		if p.Y < minArea {
			minArea = p.Y
		}
	}
	fit := r.Fit
	return func(states int) float64 {
		a := fit.At(float64(states))
		if a < minArea {
			return minArea
		}
		return a
	}
}
