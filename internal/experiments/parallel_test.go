package experiments

// Differential tests for the fan-out parallelism: every experiment must
// produce byte-identical results whatever the worker count, because the
// figures are golden outputs and the paper's numbers must not depend on
// GOMAXPROCS.

import (
	"reflect"
	"testing"
)

func TestFigure2ParallelDeterministic(t *testing.T) {
	seq := testConfig()
	seq.Workers = 1
	par := testConfig()
	par.Workers = 4

	a, err := Figure2("gcc", seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure2("gcc", par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Figure2 results differ between workers=1 and workers=4")
	}
}

func TestFigure4ParallelDeterministic(t *testing.T) {
	seq := testConfig()
	seq.Workers = 1
	seq.BranchEvents = 40_000
	par := seq
	par.Workers = 4

	a, err := Figure4(seq, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure4(par, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Figure4 results differ between workers=1 and workers=4")
	}
}

func TestFigure5ParallelDeterministic(t *testing.T) {
	seq := testConfig()
	seq.Workers = 1
	par := testConfig()
	par.Workers = 4
	area := func(states int) float64 { return 20 + 2.2*float64(states) }

	a, err := Figure5("vortex", seq, area)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure5("vortex", par, area)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Figure5 results differ between workers=1 and workers=4")
	}
}
