package experiments

import (
	"strings"
	"testing"

	"fsmpredict/internal/stats"
)

// testConfig shrinks the experiments so the suite stays fast; shapes must
// already hold at this scale.
func testConfig() Config {
	return Config{
		BranchEvents: 80_000,
		LoadEvents:   50_000,
		MaxCustom:    8,
		Order:        9,
		Histories:    []int{2, 6},
		TableLog2:    11,
	}
}

func TestFigure1(t *testing.T) {
	r, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if r.StartupMachine.NumStates() != 5 {
		t.Errorf("startup machine states = %d, want 5", r.StartupMachine.NumStates())
	}
	if r.Design.Machine.NumStates() != 3 {
		t.Errorf("final machine states = %d, want 3", r.Design.Machine.NumStates())
	}
	cubes := map[string]bool{}
	for _, c := range r.Design.Cover {
		cubes[c.String()] = true
	}
	if !cubes["x1"] || !cubes["1x"] || len(cubes) != 2 {
		t.Errorf("cover = %v, want {x1, 1x}", r.Design.Cover)
	}
	rep := r.Report()
	for _, want := range []string{"P[1|00] = 2/5", "P[1|11] = 6/8", "minimized cover", "start-state reduction"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestFigure2Shape(t *testing.T) {
	r, err := Figure2("gcc", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.SUD) < 50 {
		t.Fatalf("SUD sweep has %d points", len(r.SUD))
	}
	for _, h := range []int{2, 6} {
		if len(r.Curves[h]) == 0 {
			t.Fatalf("missing FSM curve for history %d", h)
		}
	}

	// Headline shape: at a mid-range accuracy target the best FSM point
	// covers more than the best SUD point.
	sudFront := r.SUDFrontier()
	bestSUDAt := func(acc float64) float64 {
		best := -1.0
		for _, p := range sudFront {
			if p.X >= acc && p.Y > best {
				best = p.Y
			}
		}
		return best
	}
	bestFSMAt := func(acc float64) float64 {
		best := -1.0
		for _, h := range []int{2, 6} {
			for _, p := range r.CurvePoints(h) {
				if p.X >= acc && p.Y > best {
					best = p.Y
				}
			}
		}
		return best
	}
	for _, acc := range []float64{0.7, 0.8} {
		fsmCov, sudCov := bestFSMAt(acc), bestSUDAt(acc)
		if fsmCov < 0 {
			t.Errorf("no FSM point reaches accuracy %v", acc)
			continue
		}
		if sudCov >= 0 && fsmCov < sudCov {
			t.Errorf("at accuracy %v: FSM coverage %.3f below SUD %.3f", acc, fsmCov, sudCov)
		}
	}

	// Longer histories should not hurt at matched thresholds (they see
	// strictly more context); require weak dominance on the best point.
	if bestAt(r.CurvePoints(6)) < bestAt(r.CurvePoints(2))-0.05 {
		t.Errorf("history 6 curve (best %.3f) much worse than history 2 (best %.3f)",
			bestAt(r.CurvePoints(6)), bestAt(r.CurvePoints(2)))
	}

	// Series output includes the up/down points and both curves.
	series := r.Series()
	if len(series) != 3 {
		t.Errorf("series count = %d, want 3", len(series))
	}
	if csv := stats.CSV(series); !strings.Contains(csv, "custom w/ hist=6") {
		t.Error("CSV missing curve name")
	}
}

// bestAt returns the best coverage at accuracy >= 0.7 from a curve.
func bestAt(points []stats.Point) float64 {
	best := -1.0
	for _, p := range points {
		if p.X >= 0.7 && p.Y > best {
			best = p.Y
		}
	}
	return best
}

func TestFigure4Linearity(t *testing.T) {
	cfg := testConfig()
	r, err := Figure4(cfg, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 10 {
		t.Fatalf("only %d area samples", len(r.Points))
	}
	if r.Fit.Slope <= 0 {
		t.Errorf("area/state slope = %v, want positive", r.Fit.Slope)
	}
	// Strong linear relationship for the bulk, as the paper's Figure 4
	// shows (regular machines fall below the line and are trimmed).
	if r.Fit.R2 < 0.6 {
		t.Errorf("trimmed R2 = %v, want >= 0.6", r.Fit.R2)
	}
	if len(r.Kept) < len(r.Points)/2 {
		t.Errorf("trim kept only %d of %d points", len(r.Kept), len(r.Points))
	}
	// The line is a conservative (upper) bound for the dropped regular
	// machines: every dropped large machine lies below the line, as in
	// the paper's Figure 4.
	kept := map[stats.Point]int{}
	for _, p := range r.Kept {
		kept[p]++
	}
	for _, p := range r.Points {
		if kept[p] > 0 {
			kept[p]--
			continue
		}
		if p.Y > r.Fit.At(p.X) {
			t.Errorf("dropped point (%v,%v) above the bound %v", p.X, p.Y, r.Fit.At(p.X))
		}
	}
	model := r.AreaModel()
	if model(10) <= 0 || model(100) <= model(10) {
		t.Error("area model not increasing")
	}
}

func TestFigure5VortexShape(t *testing.T) {
	cfg := testConfig()
	r, err := Figure5("vortex", cfg, func(states int) float64 { return 20 + 2.2*float64(states) })
	if err != nil {
		t.Fatal(err)
	}
	// Custom dramatically improves on the baseline (paper: 13% -> 3%).
	best := MinMiss(r.CustomDiff)
	if best > 0.6*r.XScale.Y {
		t.Errorf("custom-diff best %.3f vs xscale %.3f: expected a large reduction",
			best, r.XScale.Y)
	}
	// custom-diff tracks custom-same closely (§7.5: "little to no
	// difference").
	if MinMiss(r.CustomDiff) > MinMiss(r.CustomSame)+0.03 {
		t.Errorf("custom-diff %.3f much worse than custom-same %.3f",
			MinMiss(r.CustomDiff), MinMiss(r.CustomSame))
	}
	// At the custom predictor's area, no table predictor does better.
	maxCustomArea := r.CustomDiff.Points[len(r.CustomDiff.Points)-1].X
	for _, s := range []stats.Series{r.Gshare, r.LGC} {
		if miss, ok := BestAtOrBelow(s, maxCustomArea); ok && miss < best {
			t.Errorf("%s reaches %.3f within custom area %.0f; custom best is %.3f",
				s.Name, miss, maxCustomArea, best)
		}
	}
}

func TestFigure5CompressShape(t *testing.T) {
	cfg := testConfig()
	r, err := Figure5("compress", cfg, func(states int) float64 { return 20 + 2.2*float64(states) })
	if err != nil {
		t.Fatal(err)
	}
	// One custom FSM yields a solid improvement over the baseline…
	first := r.CustomDiff.Points[0].Y
	if first >= r.XScale.Y {
		t.Errorf("first custom FSM (%.3f) should beat xscale (%.3f)", first, r.XScale.Y)
	}
	// …but additional FSMs barely help (paper: "little to no
	// improvement").
	last := r.CustomDiff.Points[len(r.CustomDiff.Points)-1].Y
	if first-last > 0.5*(r.XScale.Y-first) {
		t.Errorf("later FSMs improved too much: first %.3f, last %.3f", first, last)
	}
	// The local-history branch means LGC eventually beats custom.
	if MinMiss(r.LGC) >= MinMiss(r.CustomDiff) {
		t.Errorf("LGC best %.3f should beat custom best %.3f on compress",
			MinMiss(r.LGC), MinMiss(r.CustomDiff))
	}
}

func TestFigure6Example(t *testing.T) {
	r, err := Figure6(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cover) != 1 || r.Cover[0].String() != "1x" {
		t.Fatalf("cover = %v, want [1x]", r.Cover)
	}
	if r.Machine.NumStates() != 4 {
		t.Errorf("machine states = %d, want 4 (paper Figure 6)", r.Machine.NumStates())
	}
	if s, h, ok := r.CapturesFromAnyState(); !ok {
		t.Errorf("pattern not captured from state %d history %b", s, h)
	}
}

func TestFigure7Example(t *testing.T) {
	r, err := Figure7(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cover) != 1 || r.Cover[0].String() != "x1x0" {
		t.Fatalf("cover = %v, want [x1x0]", r.Cover)
	}
	if s, h, ok := r.CapturesFromAnyState(); !ok {
		t.Errorf("pattern not captured from state %d history %b", s, h)
	}
	if k, ok := r.Machine.SyncDepth(); !ok || k > r.Order {
		t.Errorf("SyncDepth = %d/%v, want <= %d", k, ok, r.Order)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	d := DefaultConfig()
	if c.BranchEvents != d.BranchEvents || c.Order != d.Order ||
		c.TableLog2 != d.TableLog2 || len(c.Histories) != len(d.Histories) {
		t.Errorf("withDefaults = %+v, want %+v", c, d)
	}
	partial := Config{Order: 5}.withDefaults()
	if partial.Order != 5 || partial.BranchEvents != d.BranchEvents {
		t.Errorf("partial defaults wrong: %+v", partial)
	}
}

func TestFigure5GlobalCorrelationShapes(t *testing.T) {
	// ijpeg and gsm: the custom predictor's best miss rate beats even the
	// largest gshare and LGC tables (paper §7.5: "far below that of even
	// the largest table we examined").
	cfg := testConfig()
	area := func(states int) float64 { return 20 + 2.2*float64(states) }
	for _, prog := range []string{"ijpeg", "gsm"} {
		r, err := Figure5(prog, cfg, area)
		if err != nil {
			t.Fatal(err)
		}
		best := MinMiss(r.CustomDiff)
		if best >= r.XScale.Y {
			t.Errorf("%s: custom (%.3f) should beat xscale (%.3f)", prog, best, r.XScale.Y)
		}
		if g := MinMiss(r.Gshare); best >= g {
			t.Errorf("%s: custom best %.3f should beat gshare best %.3f", prog, best, g)
		}
		if l := MinMiss(r.LGC); best >= l {
			t.Errorf("%s: custom best %.3f should beat LGC best %.3f", prog, best, l)
		}
		// And it does so at a fraction of the area.
		maxCustomArea := r.CustomDiff.Points[len(r.CustomDiff.Points)-1].X
		largestTable := r.Gshare.Points[len(r.Gshare.Points)-1].X
		if maxCustomArea > largestTable/5 {
			t.Errorf("%s: custom area %.0f not clearly smaller than the largest table %.0f",
				prog, maxCustomArea, largestTable)
		}
	}
}

func TestFigure5G721SmallGain(t *testing.T) {
	// g721: the baseline is already good; custom gives only a small
	// improvement (paper: 8%% to just over 7%%).
	cfg := testConfig()
	r, err := Figure5("g721", cfg, func(states int) float64 { return 20 + 2.2*float64(states) })
	if err != nil {
		t.Fatal(err)
	}
	best := MinMiss(r.CustomDiff)
	if best >= r.XScale.Y {
		t.Errorf("custom (%.3f) should still beat xscale (%.3f)", best, r.XScale.Y)
	}
	// Relative gain well under half: a "small improvement".
	if best < 0.55*r.XScale.Y {
		t.Errorf("custom gain too large for g721: %.3f vs xscale %.3f", best, r.XScale.Y)
	}
}

func TestFigure5GsModestGain(t *testing.T) {
	// gs: from just under 5%% to just over 4%% in the paper — a solid but
	// modest reduction on an already-good baseline.
	cfg := testConfig()
	r, err := Figure5("gs", cfg, func(states int) float64 { return 20 + 2.2*float64(states) })
	if err != nil {
		t.Fatal(err)
	}
	best := MinMiss(r.CustomDiff)
	if best >= r.XScale.Y {
		t.Errorf("custom (%.3f) should beat xscale (%.3f)", best, r.XScale.Y)
	}
	if r.XScale.Y > 0.12 {
		t.Errorf("gs baseline %.3f should be a well-predicted program", r.XScale.Y)
	}
}

func TestFigure2AllProgramsProduceCurves(t *testing.T) {
	cfg := testConfig()
	cfg.LoadEvents = 30_000
	cfg.Histories = []int{4}
	for _, prog := range []string{"go", "groff", "li", "perl"} {
		r, err := Figure2(prog, cfg)
		if err != nil {
			t.Fatalf("%s: %v", prog, err)
		}
		pts := r.CurvePoints(4)
		if len(pts) == 0 {
			t.Errorf("%s: empty FSM curve", prog)
			continue
		}
		// Some operating point must reach a nontrivial coverage at a
		// nontrivial accuracy.
		ok := false
		for _, p := range pts {
			if p.X >= 0.6 && p.Y >= 0.3 {
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s: no useful confidence operating point: %v", prog, pts)
		}
	}
}

// TestCustomDiffTracksCustomSameAcrossSuite sweeps the paper's §7.5
// observation over every benchmark: training on one input and measuring
// on another costs almost nothing, because the custom FSMs capture
// correlation structure, not input data.
func TestCustomDiffTracksCustomSameAcrossSuite(t *testing.T) {
	cfg := testConfig()
	cfg.MaxCustom = 6
	area := func(states int) float64 { return 20 + 2.2*float64(states) }
	for _, prog := range []string{"compress", "gs", "gsm", "g721", "ijpeg", "vortex"} {
		r, err := Figure5(prog, cfg, area)
		if err != nil {
			t.Fatalf("%s: %v", prog, err)
		}
		same, diff := MinMiss(r.CustomSame), MinMiss(r.CustomDiff)
		if diff-same > 0.04 {
			t.Errorf("%s: custom-diff %.3f far above custom-same %.3f", prog, diff, same)
		}
		if diff >= r.XScale.Y {
			t.Errorf("%s: custom-diff %.3f does not beat the baseline %.3f", prog, diff, r.XScale.Y)
		}
	}
}
