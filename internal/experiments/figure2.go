package experiments

import (
	"context"
	"fmt"

	"fsmpredict/internal/confidence"
	"fsmpredict/internal/markov"
	"fsmpredict/internal/par"
	"fsmpredict/internal/stats"
	"fsmpredict/internal/trace"
	"fsmpredict/internal/tracestore"
	"fsmpredict/internal/workload"
)

// Figure2Result holds one program's value-prediction confidence
// comparison: the saturating up/down counter sweep versus cross-trained
// custom FSM curves per history length.
type Figure2Result struct {
	Program string
	// SUD holds the counter configuration points (§3.1 sweep).
	SUD []confidence.SUDPoint
	// Curves maps each history length to its threshold-swept FSM points;
	// the FSMs were trained on all OTHER programs (§6.3 cross-training).
	Curves map[int][]confidence.FSMPoint
}

// Figure2 reproduces one panel of Figure 2 for the named value benchmark
// (gcc, go, groff, li or perl).
func Figure2(program string, cfg Config) (*Figure2Result, error) {
	cfg = cfg.withDefaults()
	target, err := workload.LoadByName(program)
	if err != nil {
		return nil, err
	}
	// Load traces come from the shared store: each program's training
	// input is cross-trained against by every other program's panel, so
	// one generation serves the whole Figure 2 sweep.
	evalLoads := tracestore.Shared.Loads(target, workload.Test, cfg.LoadEvents)

	res := &Figure2Result{
		Program: program,
		SUD:     confidence.SUDSweep(evalLoads, cfg.TableLog2),
		Curves:  make(map[int][]confidence.FSMPoint, len(cfg.Histories)),
	}

	// Cross-training: per history length, merge the per-entry correctness
	// models of every other program's training input.
	others := make([][]trace.LoadEvent, 0, 4)
	for _, p := range workload.LoadSuite() {
		if p.Name == program {
			continue
		}
		others = append(others, tracestore.Shared.Loads(p, workload.Train, cfg.LoadEvents))
	}
	if len(others) == 0 {
		return nil, fmt.Errorf("experiments: no other programs to cross-train on")
	}
	// Each history length is an independent train-and-sweep; fan out.
	curves, err := par.MapSlice(context.Background(), cfg.Workers, cfg.Histories,
		func(_ int, h int) ([]confidence.FSMPoint, error) {
			model := markov.New(h)
			for _, loads := range others {
				if err := model.Merge(confidence.PerEntryCorrectnessModel(loads, cfg.TableLog2, h)); err != nil {
					return nil, err
				}
			}
			points, err := confidence.FSMCurve(model, confidence.DefaultThresholds(), evalLoads, cfg.TableLog2)
			if err != nil {
				return nil, fmt.Errorf("experiments: figure2 %s h=%d: %v", program, h, err)
			}
			return points, nil
		})
	if err != nil {
		return nil, err
	}
	for i, h := range cfg.Histories {
		res.Curves[h] = curves[i]
	}
	return res, nil
}

// SUDFrontier returns the Pareto-optimal accuracy/coverage frontier of
// the counter sweep.
func (r *Figure2Result) SUDFrontier() []stats.Point {
	pts := make([]stats.Point, 0, len(r.SUD))
	for _, p := range r.SUD {
		pts = append(pts, stats.Point{X: p.Result.Accuracy(), Y: p.Result.Coverage()})
	}
	return stats.ParetoMax(pts)
}

// CurvePoints returns one history length's curve as accuracy/coverage
// points sorted by accuracy.
func (r *Figure2Result) CurvePoints(history int) []stats.Point {
	pts := make([]stats.Point, 0, len(r.Curves[history]))
	for _, p := range r.Curves[history] {
		pts = append(pts, stats.Point{X: p.Result.Accuracy(), Y: p.Result.Coverage()})
	}
	s := stats.Series{Points: pts}
	s.Sort()
	return s.Points
}

// Series renders the whole panel as named series for CSV/plot output.
func (r *Figure2Result) Series() []stats.Series {
	var out []stats.Series
	var sud stats.Series
	sud.Name = "up/down"
	for _, p := range r.SUD {
		sud.Points = append(sud.Points, stats.Point{X: p.Result.Accuracy(), Y: p.Result.Coverage()})
	}
	out = append(out, sud)
	for _, h := range sortedKeys(r.Curves) {
		out = append(out, stats.Series{
			Name:   fmt.Sprintf("custom w/ hist=%d", h),
			Points: r.CurvePoints(h),
		})
	}
	return out
}

func sortedKeys(m map[int][]confidence.FSMPoint) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
