package experiments

import (
	"context"
	"fmt"

	"fsmpredict/internal/confidence"
	"fsmpredict/internal/core"
	"fsmpredict/internal/markov"
	"fsmpredict/internal/par"
	"fsmpredict/internal/stats"
	"fsmpredict/internal/tracestore"
	"fsmpredict/internal/workload"
)

// Figure2Result holds one program's value-prediction confidence
// comparison: the saturating up/down counter sweep versus cross-trained
// custom FSM curves per history length.
type Figure2Result struct {
	Program string
	// SUD holds the counter configuration points (§3.1 sweep).
	SUD []confidence.SUDPoint
	// Curves maps each history length to its threshold-swept FSM points;
	// the FSMs were trained on all OTHER programs (§6.3 cross-training).
	Curves map[int][]confidence.FSMPoint
}

// Figure2 reproduces one panel of Figure 2 for the named value benchmark
// (gcc, go, groff, li or perl).
//
// The panel is fold-once and replay-only: the stride predictor runs at
// most once per (program, input) — its packed correctness streams live
// in the shared trace store, so the five panels of the full figure share
// one simulation per trace — and each peer is profiled once, at the
// maximum requested history length. Cross-training is one aggregate plus
// a subtraction (core.CrossTrain) and every shorter history is an exact
// fold of the wide model (markov.Model.FoldTo). All of this is pure
// algebra over the same counts the per-history re-profiling used to
// produce, so the plotted points are bit-identical; the differential
// tests at the markov, confidence and experiments layers enforce that.
func Figure2(program string, cfg Config) (*Figure2Result, error) {
	cfg = cfg.withDefaults()
	target, err := workload.LoadByName(program)
	if err != nil {
		return nil, err
	}
	evalStreams := tracestore.Shared.ConfStreams(target, workload.Test, cfg.LoadEvents, cfg.TableLog2)

	res := &Figure2Result{
		Program: program,
		SUD:     confidence.SUDSweepStreams(evalStreams),
		Curves:  make(map[int][]confidence.FSMPoint, len(cfg.Histories)),
	}

	maxH := 0
	for _, h := range cfg.Histories {
		if h > maxH {
			maxH = h
		}
	}
	// Profile every program's training input once at the maximum history
	// length and cross-train the whole suite in one pass.
	suite := make(map[string]*markov.Model)
	for _, p := range workload.LoadSuite() {
		streams := tracestore.Shared.ConfStreams(p, workload.Train, cfg.LoadEvents, cfg.TableLog2)
		suite[p.Name] = confidence.PerEntryModel(streams, maxH)
	}
	if len(suite) < 2 {
		return nil, fmt.Errorf("experiments: no other programs to cross-train on")
	}
	crossed, err := core.CrossTrain(suite)
	if err != nil {
		return nil, err
	}
	wide, ok := crossed[program]
	if !ok {
		return nil, fmt.Errorf("experiments: %s is not in the load suite", program)
	}
	// Each history length folds the wide model down and sweeps; fan out.
	curves, err := par.MapSlice(context.Background(), cfg.Workers, cfg.Histories,
		func(_ int, h int) ([]confidence.FSMPoint, error) {
			model, err := wide.FoldTo(h)
			if err != nil {
				return nil, err
			}
			points, err := confidence.FSMCurveStreams(model, confidence.DefaultThresholds(), evalStreams)
			if err != nil {
				return nil, fmt.Errorf("experiments: figure2 %s h=%d: %v", program, h, err)
			}
			return points, nil
		})
	if err != nil {
		return nil, err
	}
	for i, h := range cfg.Histories {
		res.Curves[h] = curves[i]
	}
	return res, nil
}

// SUDFrontier returns the Pareto-optimal accuracy/coverage frontier of
// the counter sweep.
func (r *Figure2Result) SUDFrontier() []stats.Point {
	pts := make([]stats.Point, 0, len(r.SUD))
	for _, p := range r.SUD {
		pts = append(pts, stats.Point{X: p.Result.Accuracy(), Y: p.Result.Coverage()})
	}
	return stats.ParetoMax(pts)
}

// CurvePoints returns one history length's curve as accuracy/coverage
// points sorted by accuracy.
func (r *Figure2Result) CurvePoints(history int) []stats.Point {
	pts := make([]stats.Point, 0, len(r.Curves[history]))
	for _, p := range r.Curves[history] {
		pts = append(pts, stats.Point{X: p.Result.Accuracy(), Y: p.Result.Coverage()})
	}
	s := stats.Series{Points: pts}
	s.Sort()
	return s.Points
}

// Series renders the whole panel as named series for CSV/plot output.
func (r *Figure2Result) Series() []stats.Series {
	var out []stats.Series
	var sud stats.Series
	sud.Name = "up/down"
	for _, p := range r.SUD {
		sud.Points = append(sud.Points, stats.Point{X: p.Result.Accuracy(), Y: p.Result.Coverage()})
	}
	out = append(out, sud)
	for _, h := range sortedKeys(r.Curves) {
		out = append(out, stats.Series{
			Name:   fmt.Sprintf("custom w/ hist=%d", h),
			Points: r.CurvePoints(h),
		})
	}
	return out
}

func sortedKeys(m map[int][]confidence.FSMPoint) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
