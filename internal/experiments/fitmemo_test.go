package experiments

import (
	"reflect"
	"testing"

	"fsmpredict/internal/fidelity"
)

// memoTestConfig is small enough for three figure runs per test but
// still exercises multi-entry prefix sweeps.
func memoTestConfig() Config {
	return Config{
		BranchEvents: 20_000,
		LoadEvents:   12_000,
		MaxCustom:    3,
		Order:        6,
		Histories:    []int{2, 4},
		TableLog2:    8,
	}
}

// flatArea is a stand-in area model so Figure 5 tests don't run the
// whole Figure 4 synthesis first.
func flatArea(states int) float64 { return float64(states) }

// TestFigure5AdaptiveIdentical is the sweep memo's exactness contract
// at the figure level: adaptive off, adaptive cold, and adaptive warm
// (second run in the same process) must produce identical curves, and
// the warm run must actually be served by the memo.
func TestFigure5AdaptiveIdentical(t *testing.T) {
	fidelity.ResetMemo()
	cfg := memoTestConfig()
	exact, err := Figure5("gsm", cfg, flatArea)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Adaptive = true
	cold, err := Figure5("gsm", cfg, flatArea)
	if err != nil {
		t.Fatal(err)
	}
	before := fidelity.Snapshot().Hits
	warm, err := Figure5("gsm", cfg, flatArea)
	if err != nil {
		t.Fatal(err)
	}
	if fidelity.Snapshot().Hits <= before {
		t.Error("warm adaptive Figure5 took no sweep-memo hits")
	}
	for _, pair := range []struct {
		name string
		got  *Figure5Result
	}{{"adaptive-cold", cold}, {"adaptive-warm", warm}} {
		if !reflect.DeepEqual(exact.Series(), pair.got.Series()) {
			t.Errorf("%s Figure5 series differ from exact mode", pair.name)
		}
	}
}

// TestFigure4AdaptiveIdentical covers the sampled-miss group memo the
// same way: the scored training miss rates must be bit-identical with
// the memo off, cold, and warm.
func TestFigure4AdaptiveIdentical(t *testing.T) {
	fidelity.ResetMemo()
	cfg := memoTestConfig()
	exact, err := Figure4(cfg, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Adaptive = true
	cold, err := Figure4(cfg, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	before := fidelity.Snapshot().Hits
	warm, err := Figure4(cfg, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if fidelity.Snapshot().Hits <= before {
		t.Error("warm adaptive Figure4 took no sweep-memo hits")
	}
	for _, pair := range []struct {
		name string
		got  *Figure4Result
	}{{"adaptive-cold", cold}, {"adaptive-warm", warm}} {
		if !reflect.DeepEqual(exact.MissRates, pair.got.MissRates) {
			t.Errorf("%s Figure4 miss rates differ from exact mode", pair.name)
		}
		if !reflect.DeepEqual(exact.Points, pair.got.Points) {
			t.Errorf("%s Figure4 area points differ from exact mode", pair.name)
		}
	}
}
