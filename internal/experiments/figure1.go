package experiments

import (
	"fmt"
	"strings"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/core"
	"fsmpredict/internal/fsm"
	"fsmpredict/internal/regex"
)

// PaperTrace is the worked-example trace t of §4.2.
const PaperTrace = "0000 1000 1011 1101 1110 1111"

// Figure1Result holds both machines of Figure 1: the minimized machine
// with start-up states (left) and the final machine after start-state
// reduction (right), along with every intermediate design artifact.
type Figure1Result struct {
	Design         *core.Design
	StartupMachine *fsm.Machine
}

// Figure1 runs the §4 design flow on the paper's example trace with a
// second-order model.
func Figure1() (*Figure1Result, error) {
	tr := bitseq.MustFromString(PaperTrace)
	design, err := core.FromTrace(tr, core.Options{Order: 2, Name: "figure1", Artifacts: true})
	if err != nil {
		return nil, err
	}
	withStartup, err := core.FromTrace(tr, core.Options{Order: 2, Name: "figure1_startup", KeepStartup: true})
	if err != nil {
		return nil, err
	}
	return &Figure1Result{Design: design, StartupMachine: withStartup.Machine}, nil
}

// Report renders the figure as text: model probabilities, pattern sets,
// cover, regular expression, and both machines.
func (r *Figure1Result) Report() string {
	var sb strings.Builder
	d := r.Design
	fmt.Fprintf(&sb, "trace t = %s\n\n", PaperTrace)
	sb.WriteString("second-order Markov model:\n")
	for h := uint32(0); h < 4; h++ {
		c := d.Model.Count(h)
		fmt.Fprintf(&sb, "  P[1|%s] = %d/%d\n", bitseq.HistoryString(h, 2), c.Ones, c.Total())
	}
	fmt.Fprintf(&sb, "\npredict-1 set: %v\npredict-0 set: %v\n",
		d.Partition.PredictOne, d.Partition.PredictZero)
	fmt.Fprintf(&sb, "minimized cover: %v\n", d.Cover)
	fmt.Fprintf(&sb, "regular expression: %s\n", regex.String(d.Expr))
	fmt.Fprintf(&sb, "\nwith start-up states (%d states):\n%s\n",
		r.StartupMachine.NumStates(), r.StartupMachine)
	fmt.Fprintf(&sb, "after start-state reduction (%d states):\n%s\n",
		d.Machine.NumStates(), d.Machine)
	return sb.String()
}
