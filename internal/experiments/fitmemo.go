package experiments

import (
	"encoding/binary"

	"fsmpredict/internal/bpred"
	"fsmpredict/internal/fidelity"
	"fsmpredict/internal/fsm"
	"fsmpredict/internal/tracestore"
)

// This file is the experiments side of the adaptive-fidelity engine:
// the figure sweeps' exact result vectors are content-addressed into
// the fidelity sweep memo, so a repeated sweep over the same trace and
// entry set (a paperrun grid re-run, a warm-started process with the
// disk tier attached) loads its numbers instead of re-simulating. Only
// exact full-fidelity vectors are ever stored — a hit is
// indistinguishable from re-running the sweep, which is why Adaptive
// cannot change any figure output.

// entryKeyBytes renders a custom-entry set as canonical key material:
// each entry's branch tag followed by its machine's canonical
// structural bytes. Two entry sets with the same key material simulate
// identically on the same trace.
func entryKeyBytes(entries []*bpred.CustomEntry) []byte {
	var b []byte
	var tag [8]byte
	for _, e := range entries {
		binary.LittleEndian.PutUint64(tag[:], e.Tag)
		b = append(b, tag[:]...)
		b = e.Machine.AppendCanonical(b)
	}
	return b
}

// traceKeyBytes fingerprints a packed trace's outcome stream (event
// count included, buffer tails masked).
func traceKeyBytes(tr *tracestore.Packed) []byte {
	k := fidelity.TraceDigest(tr.Outcomes().Words(), tr.Len())
	return k[:]
}

// prefixSweep is Figure 5's custom-prefix simulation behind the sweep
// memo: with adaptive off (or on a memo miss) it runs
// bpred.RunCustomPrefixesParallel and records the exact vector; on a
// hit it decodes the memoized vector. Results are identical on every
// path — the update-all prefix sweep is deterministic and the memo only
// ever holds exact runs.
func prefixSweep(entries []*bpred.CustomEntry, tr *tracestore.Packed, workers int, adaptive bool) []bpred.Result {
	var key fidelity.Key
	if adaptive {
		key = fidelity.DigestKey("experiments/custom-prefixes",
			traceKeyBytes(tr), entryKeyBytes(entries))
		if v, ok := fidelity.SweepGet(key); ok && len(v) == len(entries) {
			out := make([]bpred.Result, len(v))
			for i, r := range v {
				out[i] = bpred.Result{Total: r.Total, Misses: r.Total - r.Correct}
			}
			return out
		}
	}
	results := bpred.RunCustomPrefixesParallel(entries, tr, workers)
	if adaptive {
		v := make([]fsm.SimResult, len(results))
		for i, r := range results {
			v[i] = fsm.SimResult{Total: r.Total, Correct: r.Total - r.Misses}
		}
		fidelity.SweepPut(key, v)
	}
	return results
}

// sampledMissGroup is Figure 4's per-program update-all replay behind
// the sweep memo: one vector of (sampled positions, misses) pairs per
// (trace, machine group). The kernel fleet pass and the scalar oracle
// are bit-identical, so memoized values agree with either path.
type sampledMissGroup struct {
	key fidelity.Key
	ok  bool
}

// lookupSampledMisses consults the memo for one program group's
// sampled-miss vector. machinesKey must cover every (tag, machine)
// pair of the group in order.
func lookupSampledMisses(tr *tracestore.Packed, machinesKey []byte, want int, adaptive bool) ([]fsm.SimResult, sampledMissGroup) {
	if !adaptive {
		return nil, sampledMissGroup{}
	}
	key := fidelity.DigestKey("experiments/sampled-miss", traceKeyBytes(tr), machinesKey)
	if v, ok := fidelity.SweepGet(key); ok && len(v) == want {
		return v, sampledMissGroup{key: key, ok: true}
	}
	return nil, sampledMissGroup{key: key, ok: true}
}

// store records a freshly simulated group vector under the key lookup
// derived (no-op when adaptive was off).
func (g sampledMissGroup) store(v []fsm.SimResult) {
	if g.ok {
		fidelity.SweepPut(g.key, v)
	}
}
