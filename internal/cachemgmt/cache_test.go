package cachemgmt

import (
	"testing"

	"fsmpredict/internal/core"
	"fsmpredict/internal/counters"
)

// workload: a small hot working set with strong reuse, plus a streaming
// scan from a different instruction that never reuses but steadily
// stomps the hot set's cache sets under always-allocate.
func mixedWorkload(n int) []AccessEvent {
	var events []AccessEvent
	streamAddr := uint64(1 << 30)
	hot := 0
	for i := 0; i < n; i++ {
		// Four sequential hot accesses over a 16-line working set...
		for k := 0; k < 4; k++ {
			events = append(events, AccessEvent{
				PC:   0x100,
				Addr: uint64(hot%16) * 64,
			})
			hot++
		}
		// ...then two streaming accesses that walk all sets.
		for k := 0; k < 2; k++ {
			events = append(events, AccessEvent{PC: 0x200, Addr: streamAddr})
			streamAddr += 64
		}
	}
	return events
}

func TestCacheBasics(t *testing.T) {
	c := New(4, 2, 6) // 16 sets x 2 ways x 64B
	a := AccessEvent{PC: 1, Addr: 0x1000}
	if c.Access(a) {
		t.Error("first access should miss")
	}
	if !c.Access(a) {
		t.Error("second access should hit")
	}
	// Fill the set beyond associativity: LRU eviction.
	b := AccessEvent{PC: 1, Addr: 0x1000 + 16*64} // same set
	d := AccessEvent{PC: 1, Addr: 0x1000 + 32*64} // same set
	c.Access(b)
	c.Access(d) // evicts a (LRU)
	if c.Access(a) {
		t.Error("evicted line should miss")
	}
}

func TestCacheLRUOrder(t *testing.T) {
	c := New(0, 2, 6) // fully associative, 2 ways, one set
	x := AccessEvent{PC: 1, Addr: 0}
	y := AccessEvent{PC: 1, Addr: 64}
	z := AccessEvent{PC: 1, Addr: 128}
	c.Access(x)
	c.Access(y)
	c.Access(x) // x is MRU, y is LRU
	c.Access(z) // evicts y
	if !c.Access(x) {
		t.Error("x should survive")
	}
	if c.Access(y) {
		t.Error("y should have been evicted")
	}
}

func TestGeometryValidation(t *testing.T) {
	for _, f := range []func(){
		func() { New(-1, 2, 6) },
		func() { New(4, 0, 6) },
		func() { New(4, 2, 1) },
		func() { New(21, 2, 6) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCounterBypassBeatsAlwaysAllocate(t *testing.T) {
	events := mixedWorkload(3000)

	// Small cache: 64 sets x 1 way: the stream thrashes the hot set.
	baseline := Run(New(6, 1, 6), events)

	managed := New(6, 1, 6)
	managed.Bypass = NewBank(func() counters.Predictor {
		// Allocate only for instructions that have shown reuse: a 2-bit
		// counter over hit/miss outcomes, starting pessimistic-neutral.
		c := counters.NewTwoBit()
		c.SetValue(2) // start willing to allocate
		return c
	})
	managedStats := Run(managed, events)

	if managedStats.MissRate() >= baseline.MissRate() {
		t.Errorf("bypass (%.3f) should beat always-allocate (%.3f)",
			managedStats.MissRate(), baseline.MissRate())
	}
	if managedStats.Bypassed == 0 {
		t.Error("no accesses were bypassed")
	}
}

func TestFSMBypassFromDesignFlow(t *testing.T) {
	events := mixedWorkload(3000)

	// Profile reuse per instruction, design an FSM per instruction from
	// its reuse stream, deploy as the bypass policy.
	reuse := ReuseTrace(6, 1, 6, events)
	designs := map[uint64]*core.Design{}
	for pc, bits := range reuse {
		d, err := core.FromBools(bits, core.Options{Order: 4})
		if err != nil {
			t.Fatal(err)
		}
		designs[pc] = d
	}

	// Install one designed-FSM runner per profiled instruction; unknown
	// instructions fall back to a 2-bit counter.
	managed := New(6, 1, 6)
	bank := NewBank(func() counters.Predictor { return counters.NewTwoBit() })
	for pc, d := range designs {
		bank.byPC[pc] = d.Machine.NewRunner()
	}
	managed.Bypass = bank

	baseline := Run(New(6, 1, 6), events)
	managedStats := Run(managed, events)
	if managedStats.MissRate() >= baseline.MissRate() {
		t.Errorf("FSM bypass (%.3f) should beat always-allocate (%.3f)",
			managedStats.MissRate(), baseline.MissRate())
	}
	// The streaming instruction must be the bypassed one.
	if managedStats.Bypassed < 1000 {
		t.Errorf("bypassed only %d accesses; stream not excluded", managedStats.Bypassed)
	}
}

func TestReuseTraceShapes(t *testing.T) {
	events := mixedWorkload(500)
	reuse := ReuseTrace(6, 1, 6, events)
	hot, stream := reuse[0x100], reuse[0x200]
	if len(hot) == 0 || len(stream) == 0 {
		t.Fatal("missing per-PC reuse streams")
	}
	frac := func(bits []bool) float64 {
		n := 0
		for _, b := range bits {
			if b {
				n++
			}
		}
		return float64(n) / float64(len(bits))
	}
	if frac(stream) > 0.05 {
		t.Errorf("streaming loads reuse fraction = %v, want ~0", frac(stream))
	}
	if frac(hot) < 0.6 {
		t.Errorf("hot loads reuse fraction = %v, want clearly higher", frac(hot))
	}
}

func TestRunStats(t *testing.T) {
	events := []AccessEvent{{1, 0}, {1, 0}, {1, 64}}
	s := Run(New(4, 2, 6), events)
	if s.Accesses != 3 || s.Misses != 2 || s.Bypassed != 0 {
		t.Errorf("stats = %+v", s)
	}
	if s.MissRate() < 0.66 || s.MissRate() > 0.67 {
		t.Errorf("miss rate = %v", s.MissRate())
	}
	if (Stats{}).MissRate() != 0 {
		t.Error("empty stats should be 0")
	}
}
