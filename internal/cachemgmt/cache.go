// Package cachemgmt implements the cache-management application of FSM
// predictors the paper motivates in §2.4 (McFarling's cache exclusion,
// Tyson et al.'s selective cache line replacement): a set-associative
// cache in which a small per-instruction FSM counter decides whether a
// missing load should allocate a line at all. Streaming accesses that
// never see reuse stop evicting useful data.
//
// The package provides the cache substrate, an always-allocate baseline,
// a counter-guided bypass policy, and a designed-FSM bypass policy whose
// predictor comes from the §4 design flow applied to per-instruction
// reuse traces.
package cachemgmt

import (
	"fmt"

	"fsmpredict/internal/counters"
)

// AccessEvent is one memory access: the load instruction performing it
// and the address touched.
type AccessEvent struct {
	PC   uint64
	Addr uint64
}

// Stats tallies a simulation.
type Stats struct {
	Accesses int
	Misses   int
	// Bypassed counts misses that did not allocate a line.
	Bypassed int
}

// MissRate returns the miss ratio.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a set-associative cache with true-LRU replacement.
//
// When Bypass is set, the cache also maintains a shadow tag directory of
// the same geometry that always allocates. The bypass predictors are
// trained from the SHADOW outcome ("would this access have hit had we
// always allocated?"), not from the managed cache, which avoids the
// self-fulfilling feedback loop where bypassing an instruction guarantees
// its future misses and therefore more bypassing. The shadow directory
// holds tags only — the modest hardware cost real cache-exclusion
// proposals pay for their reuse monitors.
type Cache struct {
	sets     [][]line // per set, most recent first
	shadow   [][]line // always-allocate tag directory (with Bypass only)
	ways     int
	lineBits uint
	setMask  uint64
	// Bypass, when non-nil, is consulted on every miss: its prediction
	// answers "will this line be reused?"; on a not-reused prediction the
	// line is not allocated.
	Bypass *Bank
}

type line struct {
	valid bool
	tag   uint64
}

// New returns a cache with 2^setBits sets, the given associativity, and
// 2^lineBits-byte lines.
func New(setBits, ways, lineBits int) *Cache {
	if setBits < 0 || setBits > 20 || ways < 1 || ways > 32 || lineBits < 2 || lineBits > 12 {
		panic(fmt.Sprintf("cachemgmt: bad geometry sets=2^%d ways=%d line=2^%d",
			setBits, ways, lineBits))
	}
	sets := make([][]line, 1<<uint(setBits))
	for i := range sets {
		sets[i] = make([]line, 0, ways)
	}
	return &Cache{
		sets:     sets,
		ways:     ways,
		lineBits: uint(lineBits),
		setMask:  uint64(1)<<uint(setBits) - 1,
	}
}

// probe looks tag up in one set array, moving it to MRU on a hit and
// allocating on a miss when alloc is true.
func probe(sets [][]line, set int, tag uint64, ways int, alloc bool) bool {
	lines := sets[set]
	for i, l := range lines {
		if l.valid && l.tag == tag {
			copy(lines[1:i+1], lines[:i])
			lines[0] = l
			return true
		}
	}
	if alloc {
		if len(lines) < ways {
			lines = append(lines, line{})
		}
		copy(lines[1:], lines[:len(lines)-1])
		lines[0] = line{valid: true, tag: tag}
		sets[set] = lines
	}
	return false
}

// Access performs one load, returning whether it hit.
func (c *Cache) Access(e AccessEvent) bool {
	blk := e.Addr >> c.lineBits
	set := int(blk & c.setMask)
	tag := blk

	if c.Bypass != nil {
		if c.shadow == nil {
			c.shadow = make([][]line, len(c.sets))
			for i := range c.shadow {
				c.shadow[i] = make([]line, 0, c.ways)
			}
		}
		// Train on the shadow (always-allocate) outcome.
		wouldHit := probe(c.shadow, set, tag, c.ways, true)
		c.Bypass.Update(e.PC, wouldHit)
	}

	if probe(c.sets, set, tag, c.ways, false) {
		return true
	}
	allocate := true
	if c.Bypass != nil {
		allocate = c.Bypass.Predict(e.PC)
	}
	if allocate {
		probe(c.sets, set, tag, c.ways, true)
	}
	return false
}

// Run simulates a trace and returns the stats.
func Run(c *Cache, events []AccessEvent) Stats {
	var s Stats
	for _, e := range events {
		s.Accesses++
		if !c.Access(e) {
			s.Misses++
			if c.Bypass != nil && !c.Bypass.Predicted(e.PC) {
				s.Bypassed++
			}
		}
	}
	return s
}

// Bank holds one reuse predictor per static load instruction. Predict
// answers "allocate?" (true = expect reuse); Update learns from whether
// the access actually hit.
type Bank struct {
	newPredictor func() counters.Predictor
	byPC         map[uint64]counters.Predictor
	lastPred     map[uint64]bool
}

// NewBank builds a predictor bank from a factory.
func NewBank(newPredictor func() counters.Predictor) *Bank {
	return &Bank{
		newPredictor: newPredictor,
		byPC:         map[uint64]counters.Predictor{},
		lastPred:     map[uint64]bool{},
	}
}

func (b *Bank) predictor(pc uint64) counters.Predictor {
	p := b.byPC[pc]
	if p == nil {
		p = b.newPredictor()
		b.byPC[pc] = p
	}
	return p
}

// Predict returns the allocation decision for pc's next miss.
func (b *Bank) Predict(pc uint64) bool {
	v := b.predictor(pc).Predict()
	b.lastPred[pc] = v
	return v
}

// Predicted reports the most recent decision for pc (used for stats).
func (b *Bank) Predicted(pc uint64) bool { return b.lastPred[pc] }

// Update trains pc's predictor with the observed reuse outcome.
func (b *Bank) Update(pc uint64, reused bool) {
	b.predictor(pc).Update(reused)
}

// ReuseTrace extracts, per static load, the hit/miss (reuse) bit stream
// observed under an unmanaged cache — the profile the §4 design flow
// turns into a bypass FSM.
func ReuseTrace(geometrySetBits, ways, lineBits int, events []AccessEvent) map[uint64][]bool {
	c := New(geometrySetBits, ways, lineBits)
	out := map[uint64][]bool{}
	for _, e := range events {
		hit := c.Access(e)
		out[e.PC] = append(out[e.PC], hit)
	}
	return out
}
