// Package par provides the bounded fan-out primitive the design pipeline
// uses to scale with cores: a parallel map over an index range with a
// fixed worker count, deterministic output ordering, first-error-wins
// semantics and context cancellation.
//
// The paper's §5 cost ("20 seconds to 2 minutes for all FSM predictors
// of a program") is an embarrassingly parallel batch — one independent
// design per branch — so every batch entry point (bpred.TrainCustom, the
// Figure 2/4/5 experiments) maps its work through this package.
package par

import (
	"context"
	"runtime"
	"sync"
)

// Workers normalizes a requested worker count: values <= 0 mean
// GOMAXPROCS, and the count is clamped to n so a small batch never spawns
// idle goroutines.
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map runs fn(i) for every i in [0, n) using at most workers concurrent
// goroutines and returns the results indexed by i, so the output order is
// deterministic regardless of scheduling. With workers <= 0 it uses
// GOMAXPROCS; with workers == 1 (or n == 1) it runs inline on the calling
// goroutine, making the sequential path identical to a plain loop.
//
// The first error (by lowest index i) cancels the remaining work and is
// returned; indices whose fn never ran are left as zero values. A
// cancelled ctx stops new work and returns ctx.Err() unless some fn had
// already failed at a lower index.
func Map[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, ctx.Err()
	}
	workers = Workers(workers, n)

	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			v, err := fn(i)
			if err != nil {
				return out, err
			}
			out[i] = v
		}
		return out, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		errIdx   = -1
		firstErr error
		next     int
	)
	fail := func(i int, err error) {
		mu.Lock()
		if errIdx < 0 || i < errIdx {
			errIdx, firstErr = i, err
		}
		mu.Unlock()
		cancel()
	}
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(i, err)
					return
				}
				v, err := fn(i)
				if err != nil {
					fail(i, err)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	return out, firstErr
}

// MapSlice is Map over the elements of a slice.
func MapSlice[S, T any](ctx context.Context, workers int, in []S, fn func(i int, v S) (T, error)) ([]T, error) {
	return Map(ctx, workers, len(in), func(i int) (T, error) {
		return fn(i, in[i])
	})
}
