package par

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	big := 10 * runtime.GOMAXPROCS(0)
	cases := []struct {
		requested, n, want int
	}{
		{0, big, runtime.GOMAXPROCS(0)},
		{-3, big, runtime.GOMAXPROCS(0)},
		{4, big, 4},
		{8, 3, 3},
		{2, 0, 1},
		{0, 0, 1},
	}
	for _, c := range cases {
		if got := Workers(c.requested, c.n); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.n, got, c.want)
		}
	}
}

func TestMapOrderDeterministic(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		out, err := Map(context.Background(), workers, 100, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), 4, 0, func(i int) (int, error) {
		t.Fatal("fn called for empty range")
		return 0, nil
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("got (%v, %v), want empty", out, err)
	}
}

func TestMapFirstErrorWins(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	// Index 3 fails slowly, index 17 fails fast: the error at the lowest
	// index must win even though it finishes later.
	_, err := Map(context.Background(), 8, 32, func(i int) (int, error) {
		switch i {
		case 3:
			time.Sleep(20 * time.Millisecond)
			return 0, errLow
		case 17:
			return 0, errHigh
		}
		return i, nil
	})
	if !errors.Is(err, errLow) {
		t.Fatalf("got %v, want %v", err, errLow)
	}
}

func TestMapSequentialStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int32
	_, err := Map(context.Background(), 1, 10, func(i int) (int, error) {
		calls.Add(1)
		if i == 4 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if calls.Load() != 5 {
		t.Fatalf("sequential path ran %d calls after error, want 5", calls.Load())
	}
}

func TestMapContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once atomic.Bool
	_, err := Map(ctx, 4, 1000, func(i int) (int, error) {
		if once.CompareAndSwap(false, true) {
			cancel() // cancel mid-flight, from inside the batch
		}
		<-ctx.Done()
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestMapPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	_, err := Map(ctx, 1, 10, func(i int) (int, error) {
		ran.Add(1)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("fn ran %d times on pre-cancelled context", ran.Load())
	}
}

func TestMapSlice(t *testing.T) {
	in := []string{"a", "bb", "ccc"}
	out, err := MapSlice(context.Background(), 2, in, func(i int, s string) (int, error) {
		return len(s), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != len(in[i]) {
			t.Fatalf("out[%d] = %d, want %d", i, v, len(in[i]))
		}
	}
}

// TestMapStress drives Map under the race detector with random worker
// counts, injected errors, and mid-flight cancellations — the satellite
// stress test for the fan-out machinery.
func TestMapStress(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for round := 0; round < 200; round++ {
		n := 1 + rng.Intn(64)
		workers := rng.Intn(12)
		failAt := -1
		if rng.Intn(2) == 0 {
			failAt = rng.Intn(n)
		}
		cancelEarly := rng.Intn(4) == 0

		ctx, cancel := context.WithCancel(context.Background())
		if cancelEarly {
			go cancel()
		}
		wantErr := fmt.Errorf("injected at %d", failAt)
		out, err := Map(ctx, workers, n, func(i int) (int, error) {
			if i == failAt {
				return 0, wantErr
			}
			return i + 1, nil
		})
		cancel()

		if len(out) != n {
			t.Fatalf("round %d: len(out) = %d, want %d", round, len(out), n)
		}
		switch {
		case err == nil:
			if failAt >= 0 {
				t.Fatalf("round %d: injected error at %d was swallowed", round, failAt)
			}
			for i, v := range out {
				if v != i+1 {
					t.Fatalf("round %d: out[%d] = %d, want %d", round, i, v, i+1)
				}
			}
		case errors.Is(err, wantErr) || errors.Is(err, context.Canceled):
			// Expected failure mode; slots that did complete must hold
			// either the zero value or the correct result.
			for i, v := range out {
				if v != 0 && v != i+1 {
					t.Fatalf("round %d: out[%d] = %d, want 0 or %d", round, i, v, i+1)
				}
			}
		default:
			t.Fatalf("round %d: unexpected error %v", round, err)
		}
	}
}

func BenchmarkMapOverhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Map(context.Background(), 4, 64, func(i int) (int, error) {
			return i, nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}
