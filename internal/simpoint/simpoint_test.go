package simpoint

import (
	"math"
	"testing"

	"fsmpredict/internal/bpred"
	"fsmpredict/internal/trace"
	"fsmpredict/internal/workload"
)

// phasedTrace alternates long phases of two different benchmarks,
// giving the trace a clear two-phase structure.
func phasedTrace(t *testing.T, phaseLen, phases int) []trace.BranchEvent {
	t.Helper()
	a, err := workload.ByName("gs")
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.ByName("vortex")
	if err != nil {
		t.Fatal(err)
	}
	ea := a.Generate(workload.Train, phaseLen*phases)
	eb := b.Generate(workload.Train, phaseLen*phases)
	var out []trace.BranchEvent
	for p := 0; p < phases; p++ {
		src := ea
		if p%2 == 1 {
			src = eb
		}
		out = append(out, src[p*phaseLen:(p+1)*phaseLen]...)
	}
	return out
}

func TestAnalyzeSeparatesPhases(t *testing.T) {
	const phaseLen = 10000
	events := phasedTrace(t, phaseLen, 8)
	res, err := Analyze(events, Options{IntervalLen: phaseLen, K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumIntervals() != 8 {
		t.Fatalf("intervals = %d, want 8", res.NumIntervals())
	}
	// Even intervals (gs) and odd intervals (vortex) must land in
	// different clusters, consistently.
	for i := 2; i < 8; i++ {
		if res.Assignments[i] != res.Assignments[i%2] {
			t.Errorf("interval %d in cluster %d, want %d (phase structure missed)",
				i, res.Assignments[i], res.Assignments[i%2])
		}
	}
	if res.Assignments[0] == res.Assignments[1] {
		t.Error("the two phases collapsed into one cluster")
	}
	// Two representatives with weight 1/2 each.
	if len(res.Representatives) != 2 {
		t.Fatalf("representatives = %v", res.Representatives)
	}
	for _, w := range res.Weights {
		if math.Abs(w-0.5) > 1e-9 {
			t.Errorf("weights = %v, want halves", res.Weights)
		}
	}
}

// TestSampledProfileMatchesFullProfile is the §5 methodological claim:
// per-branch behaviour measured on the representatives matches the full
// trace.
func TestSampledProfileMatchesFullProfile(t *testing.T) {
	prog, _ := workload.ByName("ijpeg")
	events := prog.Generate(workload.Train, 160000)
	res, err := Analyze(events, Options{IntervalLen: 8000, K: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sample := res.Sample(events)
	if len(sample) >= len(events) {
		t.Fatalf("sample (%d) not smaller than trace (%d)", len(sample), len(events))
	}
	full := trace.Profile(events)
	fullRate := map[uint64]float64{}
	for _, p := range full {
		fullRate[p.PC] = p.TakenRate()
	}
	for _, p := range trace.Profile(sample) {
		if want, ok := fullRate[p.PC]; ok {
			if math.Abs(p.TakenRate()-want) > 0.05 {
				t.Errorf("branch %#x: sampled taken rate %.3f vs full %.3f",
					p.PC, p.TakenRate(), want)
			}
		}
	}
}

// TestSampledDesignMatchesFullDesign: custom predictors trained on the
// SimPoint sample perform like predictors trained on the full trace.
func TestSampledDesignMatchesFullDesign(t *testing.T) {
	prog, _ := workload.ByName("vortex")
	train := prog.Generate(workload.Train, 160000)
	test := prog.Generate(workload.Test, 80000)

	res, err := Analyze(train, Options{IntervalLen: 8000, K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sample := res.Sample(train)

	opt := bpred.TrainOptions{MaxEntries: 6, Order: 9, MinExecutions: 64}
	fullEntries, err := bpred.TrainCustom(train, opt)
	if err != nil {
		t.Fatal(err)
	}
	sampleEntries, err := bpred.TrainCustom(sample, opt)
	if err != nil {
		t.Fatal(err)
	}
	fullMiss := bpred.Run(bpred.NewCustom(fullEntries), test).MissRate()
	sampleMiss := bpred.Run(bpred.NewCustom(sampleEntries), test).MissRate()
	if sampleMiss > fullMiss+0.01 {
		t.Errorf("sample-trained custom %.4f much worse than full-trained %.4f",
			sampleMiss, fullMiss)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(nil, Options{}); err == nil {
		t.Error("expected error for empty trace")
	}
	events := make([]trace.BranchEvent, 100)
	if _, err := Analyze(events, Options{IntervalLen: 1000}); err == nil {
		t.Error("expected error for trace shorter than one interval")
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	prog, _ := workload.ByName("gsm")
	events := prog.Generate(workload.Train, 60000)
	opt := Options{IntervalLen: 5000, K: 3, Seed: 9}
	a, err := Analyze(events, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Analyze(events, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("assignments not deterministic")
		}
	}
	for i := range a.Representatives {
		if a.Representatives[i] != b.Representatives[i] {
			t.Fatal("representatives not deterministic")
		}
	}
}

func TestKClampedToIntervals(t *testing.T) {
	prog, _ := workload.ByName("gs")
	events := prog.Generate(workload.Train, 20000)
	res, err := Analyze(events, Options{IntervalLen: 10000, K: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Representatives) > res.NumIntervals() {
		t.Fatalf("more representatives (%d) than intervals (%d)",
			len(res.Representatives), res.NumIntervals())
	}
	var total float64
	for _, w := range res.Weights {
		total += w
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("weights sum to %v, want 1", total)
	}
}
