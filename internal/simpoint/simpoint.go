// Package simpoint implements interval-clustering trace sampling in the
// style of SimPoint (Sherwood et al.), which the paper uses to pick the
// 300M-instruction simulation windows its traces come from (§5). The
// trace is cut into fixed-length intervals, each summarized by a branch
// execution-frequency vector (the conditional-branch analogue of basic
// block vectors); k-means groups similar intervals, and one
// representative per cluster — weighted by cluster size — stands in for
// the whole trace.
//
// For this repository it answers the methodological question the paper
// leaned on SimPoint for: profiles built from a few representative
// windows produce the same Markov models, and therefore the same
// designed predictors, as the full trace. The package tests verify
// exactly that.
package simpoint

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"fsmpredict/internal/trace"
)

// Options configures the clustering.
type Options struct {
	// IntervalLen is the number of branch events per interval
	// (default 10000).
	IntervalLen int
	// K is the number of clusters / representatives (default 4).
	K int
	// MaxIter bounds the k-means iterations (default 50).
	MaxIter int
	// Seed makes the k-means++ initialization reproducible.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.IntervalLen <= 0 {
		o.IntervalLen = 10000
	}
	if o.K <= 0 {
		o.K = 4
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 50
	}
	return o
}

// Result describes the clustering of a trace.
type Result struct {
	// IntervalLen echoes the interval length used.
	IntervalLen int
	// Assignments maps each interval to its cluster.
	Assignments []int
	// Representatives holds, per cluster, the interval index closest to
	// the cluster centroid (the "simulation point").
	Representatives []int
	// Weights holds, per cluster, its fraction of all intervals.
	Weights []float64
}

// NumIntervals returns how many intervals were clustered.
func (r *Result) NumIntervals() int { return len(r.Assignments) }

// Analyze cuts the trace into intervals, builds frequency vectors, and
// clusters them. Trailing events that do not fill an interval are
// dropped, as in SimPoint.
func Analyze(events []trace.BranchEvent, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	n := len(events) / opt.IntervalLen
	if n < 1 {
		return nil, fmt.Errorf("simpoint: trace of %d events has no full %d-event interval",
			len(events), opt.IntervalLen)
	}
	if opt.K > n {
		opt.K = n
	}

	// Feature space: execution frequency and taken frequency per static
	// branch, giving behaviour (not just code coverage) a say.
	dims := map[uint64]int{}
	for _, e := range events[:n*opt.IntervalLen] {
		if _, ok := dims[e.PC]; !ok {
			dims[e.PC] = len(dims)
		}
	}
	d := len(dims)
	vectors := make([][]float64, n)
	for i := range vectors {
		v := make([]float64, 2*d)
		for _, e := range events[i*opt.IntervalLen : (i+1)*opt.IntervalLen] {
			j := dims[e.PC]
			v[2*j]++
			if e.Taken {
				v[2*j+1]++
			}
		}
		for j := range v {
			v[j] /= float64(opt.IntervalLen)
		}
		vectors[i] = v
	}

	assignments, centroids := kmeans(vectors, opt.K, opt.MaxIter, opt.Seed)

	res := &Result{
		IntervalLen: opt.IntervalLen,
		Assignments: assignments,
	}
	counts := make([]int, len(centroids))
	bestDist := make([]float64, len(centroids))
	best := make([]int, len(centroids))
	for i := range best {
		best[i] = -1
	}
	for i, c := range assignments {
		counts[c]++
		dist := sqDist(vectors[i], centroids[c])
		if best[c] < 0 || dist < bestDist[c] {
			best[c], bestDist[c] = i, dist
		}
	}
	for c := range centroids {
		if best[c] < 0 {
			continue // empty cluster
		}
		res.Representatives = append(res.Representatives, best[c])
		res.Weights = append(res.Weights, float64(counts[c])/float64(n))
	}
	// Deterministic order: by representative interval index.
	order := make([]int, len(res.Representatives))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return res.Representatives[order[a]] < res.Representatives[order[b]]
	})
	reps := make([]int, len(order))
	ws := make([]float64, len(order))
	for i, o := range order {
		reps[i], ws[i] = res.Representatives[o], res.Weights[o]
	}
	res.Representatives, res.Weights = reps, ws
	return res, nil
}

// Interval returns the events of interval i.
func (r *Result) Interval(events []trace.BranchEvent, i int) []trace.BranchEvent {
	return events[i*r.IntervalLen : (i+1)*r.IntervalLen]
}

// Sample concatenates the representative intervals in trace order — the
// reduced trace a slow downstream analysis would consume.
func (r *Result) Sample(events []trace.BranchEvent) []trace.BranchEvent {
	var out []trace.BranchEvent
	for _, rep := range r.Representatives {
		out = append(out, r.Interval(events, rep)...)
	}
	return out
}

// kmeans clusters vectors with k-means++ initialization and Lloyd
// iterations, all deterministic under the seed.
func kmeans(vectors [][]float64, k, maxIter int, seed int64) (assign []int, centroids [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	n := len(vectors)

	// k-means++ seeding.
	centroids = append(centroids, clone(vectors[rng.Intn(n)]))
	for len(centroids) < k {
		dists := make([]float64, n)
		var total float64
		for i, v := range vectors {
			d := math.Inf(1)
			for _, c := range centroids {
				if s := sqDist(v, c); s < d {
					d = s
				}
			}
			dists[i] = d
			total += d
		}
		if total == 0 {
			// All remaining points coincide with a centroid.
			centroids = append(centroids, clone(vectors[rng.Intn(n)]))
			continue
		}
		target := rng.Float64() * total
		acc := 0.0
		pick := n - 1
		for i, d := range dists {
			acc += d
			if acc >= target {
				pick = i
				break
			}
		}
		centroids = append(centroids, clone(vectors[pick]))
	}

	assign = make([]int, n)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, v := range vectors {
			best, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				if d := sqDist(v, cent); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		counts := make([]int, k)
		next := make([][]float64, k)
		for c := range next {
			next[c] = make([]float64, len(vectors[0]))
		}
		for i, v := range vectors {
			c := assign[i]
			counts[c]++
			for j, x := range v {
				next[c][j] += x
			}
		}
		for c := range next {
			if counts[c] == 0 {
				next[c] = centroids[c] // keep empty cluster in place
				continue
			}
			for j := range next[c] {
				next[c][j] /= float64(counts[c])
			}
		}
		centroids = next
	}
	return assign, centroids
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func clone(v []float64) []float64 {
	return append([]float64(nil), v...)
}
