package simpoint

import "fmt"

// This file extends the interval clustering to bare outcome streams —
// packed trace words with no per-event PCs — which is the form every
// candidate-scoring loop holds (the GA search packs its trace once and
// never looks at addresses again). Where Analyze summarizes an interval
// by per-branch execution frequencies, AnalyzeOutcomes summarizes it by
// the statistics a predictor FSM actually experiences: the taken rate,
// the toggle rate, and the distribution of 3-bit local outcome
// patterns. Two windows with the same pattern histogram drive a small
// Moore machine through near-identical behaviour, so cluster
// representatives chosen in this space stand in for the full trace the
// same way basic-block-vector representatives do for instruction
// streams.

// defaultOutcomeIntervalLen is AnalyzeOutcomes' default window length.
// A power of two (and so a multiple of 64) keeps windows word-aligned
// in the packed stream, which lets callers extract a representative
// window as a zero-copy word subslice.
const defaultOutcomeIntervalLen = 8192

// AnalyzeOutcomes cuts the first n events of a packed outcome stream
// (bitseq layout: event i is words[i>>6]>>(i&63)&1) into fixed-length
// windows, summarizes each by outcome statistics, and clusters the
// windows with the same k-means machinery as Analyze. Trailing events
// that do not fill a window are dropped, as in SimPoint. The returned
// Representatives are window indices; window w covers events
// [w*IntervalLen, (w+1)*IntervalLen).
func AnalyzeOutcomes(words []uint64, n int, opt Options) (*Result, error) {
	if opt.IntervalLen <= 0 {
		opt.IntervalLen = defaultOutcomeIntervalLen
	}
	vectors, err := OutcomeVectors(words, n, opt.IntervalLen)
	if err != nil {
		return nil, err
	}
	return ClusterOutcomeVectors(vectors, opt)
}

// OutcomeVectors summarizes each full intervalLen-event window of the
// packed stream by its outcome-statistics vector — the expensive
// whole-trace pass of AnalyzeOutcomes, split out so callers clustering
// the same stream at several granularities (the fidelity ladder's
// escalating window tiers) pay it once.
func OutcomeVectors(words []uint64, n, intervalLen int) ([][]float64, error) {
	if intervalLen <= 0 {
		intervalLen = defaultOutcomeIntervalLen
	}
	if max := len(words) << 6; n > max {
		n = max
	}
	nw := n / intervalLen
	if nw < 1 {
		return nil, fmt.Errorf("simpoint: stream of %d outcomes has no full %d-event window",
			n, intervalLen)
	}
	vectors := make([][]float64, nw)
	for w := range vectors {
		vectors[w] = outcomeVector(words, w*intervalLen, intervalLen)
	}
	return vectors, nil
}

// ClusterOutcomeVectors clusters precomputed window vectors (one per
// consecutive opt.IntervalLen-event window) into representatives —
// AnalyzeOutcomes' second half.
func ClusterOutcomeVectors(vectors [][]float64, opt Options) (*Result, error) {
	if opt.IntervalLen <= 0 {
		opt.IntervalLen = defaultOutcomeIntervalLen
	}
	opt = opt.withDefaults()
	nw := len(vectors)
	if nw < 1 {
		return nil, fmt.Errorf("simpoint: no outcome windows to cluster")
	}
	if opt.K > nw {
		opt.K = nw
	}
	assignments, centroids := kmeans(vectors, opt.K, opt.MaxIter, opt.Seed)

	res := &Result{IntervalLen: opt.IntervalLen, Assignments: assignments}
	counts := make([]int, len(centroids))
	bestDist := make([]float64, len(centroids))
	best := make([]int, len(centroids))
	for i := range best {
		best[i] = -1
	}
	for i, c := range assignments {
		counts[c]++
		dist := sqDist(vectors[i], centroids[c])
		if best[c] < 0 || dist < bestDist[c] {
			best[c], bestDist[c] = i, dist
		}
	}
	for c := range centroids {
		if best[c] < 0 {
			continue // empty cluster
		}
		res.Representatives = append(res.Representatives, best[c])
		res.Weights = append(res.Weights, float64(counts[c])/float64(nw))
	}
	sortByRepresentative(res)
	return res, nil
}

// outcomeVector summarizes window events [off, off+length): taken rate,
// toggle rate, and the normalized histogram of overlapping 3-bit
// outcome patterns (the 8-bin local-history distribution).
func outcomeVector(words []uint64, off, length int) []float64 {
	v := make([]float64, 2+8)
	prev, hist := -1, 0
	for i := off; i < off+length; i++ {
		b := int(words[i>>6] >> uint(i&63) & 1)
		v[0] += float64(b)
		if prev >= 0 && b != prev {
			v[1]++
		}
		hist = (hist<<1 | b) & 7
		if i >= off+2 {
			v[2+hist]++
		}
		prev = b
	}
	for j := range v {
		v[j] /= float64(length)
	}
	return v
}

// sortByRepresentative puts representatives (and their weights) in
// trace order, the deterministic convention Analyze established.
func sortByRepresentative(res *Result) {
	for i := 1; i < len(res.Representatives); i++ {
		for j := i; j > 0 && res.Representatives[j] < res.Representatives[j-1]; j-- {
			res.Representatives[j], res.Representatives[j-1] = res.Representatives[j-1], res.Representatives[j]
			res.Weights[j], res.Weights[j-1] = res.Weights[j-1], res.Weights[j]
		}
	}
}
