package simpoint

import (
	"math"
	"testing"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/trace"
)

// phasedStream builds a packed outcome stream with abrupt phase shifts:
// segments alternate between a strongly-taken, long-run regime and a
// weakly-taken, short-run regime (trace.GenBiased drives both).
func phasedStream(t *testing.T, segs, segLen int) ([]uint64, int, []bool) {
	t.Helper()
	var out []bool
	for s := 0; s < segs; s++ {
		bias, runlen := 0.9, 10.0
		if s%2 == 1 {
			bias, runlen = 0.2, 3.0
		}
		evs, err := trace.GenBiased(segLen, bias, runlen, int64(300+s))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range evs {
			out = append(out, e.Taken)
		}
	}
	b := bitseq.FromBools(out)
	return b.Words(), b.Len(), out
}

func takenRate(out []bool, lo, hi int) float64 {
	ones := 0
	for _, v := range out[lo:hi] {
		if v {
			ones++
		}
	}
	return float64(ones) / float64(hi-lo)
}

// TestAnalyzeOutcomesWeightedEstimate is the representative-window
// weighting contract on a drifting, phase-shifted trace: the
// cluster-weighted taken-rate over the chosen windows must track the
// global taken rate far better than a same-coverage prefix does — the
// property the fidelity ladder's rung-0 screen assumes.
func TestAnalyzeOutcomesWeightedEstimate(t *testing.T) {
	const winLen = 2048
	words, n, out := phasedStream(t, 10, 1<<13)
	res, err := AnalyzeOutcomes(words, n, Options{IntervalLen: winLen, K: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Representatives) == 0 || len(res.Representatives) != len(res.Weights) {
		t.Fatalf("representatives/weights = %d/%d", len(res.Representatives), len(res.Weights))
	}
	var wsum, weighted float64
	for i, rep := range res.Representatives {
		lo := rep * winLen
		weighted += res.Weights[i] * takenRate(out, lo, lo+winLen)
		wsum += res.Weights[i]
		if i > 0 && res.Representatives[i] <= res.Representatives[i-1] {
			t.Fatal("representatives not in strict trace order")
		}
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Fatalf("weights sum to %v, want 1", wsum)
	}
	weighted /= wsum

	global := takenRate(out, 0, (n/winLen)*winLen)
	coverage := len(res.Representatives) * winLen
	prefix := takenRate(out, 0, coverage)

	werr := math.Abs(weighted - global)
	perr := math.Abs(prefix - global)
	// The phases are ~0.9 vs ~0.2 taken, so a prefix of a few windows
	// sits near one regime while the global rate is near their middle:
	// the weighted estimate must beat it and land close to the truth.
	if werr > 0.08 {
		t.Fatalf("weighted estimate %v vs global %v: error %v too large", weighted, global, werr)
	}
	if werr >= perr {
		t.Fatalf("weighted error %v not better than prefix error %v on a phased trace", werr, perr)
	}
}

// TestAnalyzeOutcomesPhaseSeparation: windows from the two regimes must
// land in different clusters — the outcome-statistics feature vector
// separates behaviour a raw taken-count would blur.
func TestAnalyzeOutcomesPhaseSeparation(t *testing.T) {
	const segLen = 1 << 13
	words, n, _ := phasedStream(t, 6, segLen)
	res, err := AnalyzeOutcomes(words, n, Options{IntervalLen: segLen, K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Window w covers exactly segment w here, so even segments are one
	// regime and odd the other.
	for w, c := range res.Assignments {
		if c != res.Assignments[w%2] {
			t.Fatalf("window %d assigned cluster %d, want regime cluster %d",
				w, c, res.Assignments[w%2])
		}
	}
	if res.Assignments[0] == res.Assignments[1] {
		t.Fatal("both regimes collapsed into one cluster")
	}
}

func TestAnalyzeOutcomesValidation(t *testing.T) {
	words := []uint64{0xfff}
	if _, err := AnalyzeOutcomes(words, 64, Options{IntervalLen: 128}); err == nil {
		t.Fatal("no error for a stream shorter than one window")
	}
	// K larger than the window count must clamp, not fail.
	res, err := AnalyzeOutcomes(words, 64, Options{IntervalLen: 64, K: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Representatives) != 1 || res.Representatives[0] != 0 {
		t.Fatalf("representatives = %v, want [0]", res.Representatives)
	}
	if res.Weights[0] != 1 {
		t.Fatalf("weight = %v, want 1", res.Weights[0])
	}
}
