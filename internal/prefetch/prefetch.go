// Package prefetch implements predictor-directed stream buffers, the
// prefetching application of §2.4 (Sherwood, Sair & Calder): a small set
// of stream buffers prefetch sequential blocks after a miss, and a
// per-instruction FSM predictor decides which misses deserve a buffer.
// Allocating buffers for pointer-chasing loads wastes both buffers and
// bandwidth; allocating for streaming loads covers their future misses.
//
// The allocation predictor is trained on each load's STREAM CONTINUITY —
// whether its current block follows its previous block — rather than on
// buffer survival, which under contention is destroyed by the very
// thrashing the predictor exists to prevent.
package prefetch

import (
	"fmt"

	"fsmpredict/internal/counters"
	"fsmpredict/internal/markov"
)

// Access is one memory reference: the load performing it and the block
// address touched (cache-line granularity).
type Access struct {
	PC    uint64
	Block uint64
}

// Stats tallies a simulation.
type Stats struct {
	Accesses int
	// Covered counts accesses serviced by a stream buffer (a miss the
	// prefetcher turned into a hit).
	Covered int
	// Allocations counts buffers allocated.
	Allocations int
	// Wasted counts allocated buffers evicted (or left) without ever
	// servicing an access.
	Wasted int
	// Prefetched counts blocks fetched by the buffers (bandwidth).
	Prefetched int
}

// Coverage is the fraction of accesses serviced by buffers.
func (s Stats) Coverage() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Covered) / float64(s.Accesses)
}

// WasteRate is the fraction of allocations that were never used.
func (s Stats) WasteRate() float64 {
	if s.Allocations == 0 {
		return 0
	}
	return float64(s.Wasted) / float64(s.Allocations)
}

type buffer struct {
	valid bool
	next  uint64 // next block the buffer will supply
	left  int    // remaining prefetch depth
	used  bool
	age   int // for LRU
}

// Prefetcher is a bank of stream buffers with an allocation policy.
type Prefetcher struct {
	buffers []buffer
	depth   int
	clock   int
	// Allocate, when non-nil, gates buffer allocation per PC. It is
	// trained on every access with the load's stream continuity. nil
	// means always allocate (the baseline stream buffer).
	Allocate *Bank
	// lastBlock remembers each load's previous block for the continuity
	// signal.
	lastBlock map[uint64]uint64
	lastSeen  map[uint64]bool

	lastAllocated   bool
	lastEvictValid  bool
	lastEvictWasted bool
}

// New returns a prefetcher with the given number of buffers, each
// running depth blocks ahead.
func New(buffers, depth int) *Prefetcher {
	if buffers < 1 || buffers > 64 || depth < 1 || depth > 64 {
		panic(fmt.Sprintf("prefetch: bad geometry buffers=%d depth=%d", buffers, depth))
	}
	return &Prefetcher{
		buffers:   make([]buffer, buffers),
		depth:     depth,
		lastBlock: map[uint64]uint64{},
		lastSeen:  map[uint64]bool{},
	}
}

// continuity records and returns whether this access continues the
// load's previous block.
func (p *Prefetcher) continuity(a Access) bool {
	cont := p.lastSeen[a.PC] && a.Block == p.lastBlock[a.PC]+1
	p.lastBlock[a.PC] = a.Block
	p.lastSeen[a.PC] = true
	return cont
}

// Access services one reference, returning whether a buffer covered it.
func (p *Prefetcher) Access(a Access) bool {
	p.clock++
	cont := p.continuity(a)
	if p.Allocate != nil {
		p.Allocate.Train(a.PC, cont)
	}

	for i := range p.buffers {
		b := &p.buffers[i]
		if b.valid && b.left > 0 && b.next == a.Block {
			b.next++
			b.left--
			b.used = true
			b.age = p.clock
			p.lastAllocated = false
			return true
		}
	}
	allocate := true
	if p.Allocate != nil {
		allocate = p.Allocate.Predict(a.PC)
	}
	if allocate {
		victim := 0
		for i := range p.buffers {
			if !p.buffers[i].valid {
				victim = i
				break
			}
			if p.buffers[i].age < p.buffers[victim].age {
				victim = i
			}
		}
		v := &p.buffers[victim]
		p.lastEvictValid = v.valid
		p.lastEvictWasted = v.valid && !v.used
		*v = buffer{valid: true, next: a.Block + 1, left: p.depth, age: p.clock}
	}
	p.lastAllocated = allocate
	return false
}

// Run drives the prefetcher over the trace and accumulates stats.
func Run(p *Prefetcher, accesses []Access) Stats {
	var s Stats
	for _, a := range accesses {
		s.Accesses++
		if p.Access(a) {
			s.Covered++
			continue
		}
		if p.lastAllocated {
			s.Allocations++
			s.Prefetched += p.depth
			if p.lastEvictValid && p.lastEvictWasted {
				s.Wasted++
			}
		}
	}
	// Account for buffers still resident and never used.
	for _, b := range p.buffers {
		if b.valid && !b.used {
			s.Wasted++
		}
	}
	return s
}

// Bank maps static loads to allocation predictors (1 = this load
// streams; allocate on its misses).
type Bank struct {
	factory func() counters.Predictor
	byPC    map[uint64]counters.Predictor
}

// NewBank builds a bank from a predictor factory.
func NewBank(factory func() counters.Predictor) *Bank {
	return &Bank{factory: factory, byPC: map[uint64]counters.Predictor{}}
}

func (b *Bank) predictor(pc uint64) counters.Predictor {
	p := b.byPC[pc]
	if p == nil {
		p = b.factory()
		b.byPC[pc] = p
	}
	return p
}

// Install assigns a specific predictor (e.g. a designed FSM runner).
func (b *Bank) Install(pc uint64, p counters.Predictor) { b.byPC[pc] = p }

// Predict returns the allocation decision for pc.
func (b *Bank) Predict(pc uint64) bool { return b.predictor(pc).Predict() }

// Train records pc's stream-continuity outcome.
func (b *Bank) Train(pc uint64, cont bool) { b.predictor(pc).Update(cont) }

// StreamModels profiles, per static load, its stream-continuity bit
// stream — the design-flow input for building per-load allocation FSMs.
func StreamModels(accesses []Access, order int) map[uint64]*markov.Model {
	lastBlock := map[uint64]uint64{}
	lastSeen := map[uint64]bool{}
	streams := map[uint64][]bool{}
	for _, a := range accesses {
		cont := lastSeen[a.PC] && a.Block == lastBlock[a.PC]+1
		lastBlock[a.PC] = a.Block
		lastSeen[a.PC] = true
		streams[a.PC] = append(streams[a.PC], cont)
	}
	models := map[uint64]*markov.Model{}
	for pc, bits := range streams {
		m := markov.New(order)
		m.AddBools(bits)
		models[pc] = m
	}
	return models
}
