package prefetch

import (
	"math/rand"
	"testing"

	"fsmpredict/internal/core"
	"fsmpredict/internal/counters"
)

// mixedAccesses interleaves a streaming load (sequential blocks) with a
// pointer-chasing load issuing several misses per iteration — enough to
// evict every buffer under always-allocate, so the stream only survives
// if the chaser is denied allocations.
func mixedAccesses(n int, seed int64) []Access {
	rng := rand.New(rand.NewSource(seed))
	var out []Access
	stream := uint64(1 << 20)
	for i := 0; i < n; i++ {
		out = append(out, Access{PC: 0x10, Block: stream})
		stream++
		for k := 0; k < 3; k++ {
			out = append(out, Access{PC: 0x20, Block: uint64(rng.Int63())})
		}
	}
	return out
}

func TestStreamingLoadIsCovered(t *testing.T) {
	p := New(4, 8)
	var accesses []Access
	for b := uint64(0); b < 200; b++ {
		accesses = append(accesses, Access{PC: 0x10, Block: b})
	}
	s := Run(p, accesses)
	// After the first allocation, each buffer covers `depth` blocks.
	if s.Coverage() < 0.8 {
		t.Errorf("streaming coverage = %v, want >= 0.8", s.Coverage())
	}
}

func TestRandomLoadIsNotCovered(t *testing.T) {
	p := New(4, 8)
	rng := rand.New(rand.NewSource(1))
	var accesses []Access
	for i := 0; i < 500; i++ {
		accesses = append(accesses, Access{PC: 0x20, Block: uint64(rng.Int63())})
	}
	s := Run(p, accesses)
	if s.Coverage() > 0.01 {
		t.Errorf("random coverage = %v, want ~0", s.Coverage())
	}
	if s.WasteRate() < 0.9 {
		t.Errorf("random waste = %v, want ~1", s.WasteRate())
	}
}

func TestGeometryValidation(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 8) },
		func() { New(4, 0) },
		func() { New(65, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestPredictorDirectedAllocationBeatsAlways: with few buffers and a
// hostile pointer-chasing load competing for them, gating allocation on
// a learned per-PC predictor recovers the streaming load's coverage.
func TestPredictorDirectedAllocationBeatsAlways(t *testing.T) {
	accesses := mixedAccesses(2000, 7)

	base := Run(New(2, 8), accesses)

	managed := New(2, 8)
	managed.Allocate = NewBank(func() counters.Predictor {
		c := counters.NewTwoBit()
		c.SetValue(2)
		return c
	})
	managedStats := Run(managed, accesses)

	if managedStats.Coverage() <= base.Coverage() {
		t.Errorf("directed coverage %v should beat always-allocate %v",
			managedStats.Coverage(), base.Coverage())
	}
	if managedStats.WasteRate() >= base.WasteRate() {
		t.Errorf("directed waste %v should be below always-allocate %v",
			managedStats.WasteRate(), base.WasteRate())
	}
}

// TestFSMAllocatorFromDesignFlow deploys per-load FSMs designed from the
// profiled usefulness streams.
func TestFSMAllocatorFromDesignFlow(t *testing.T) {
	train := mixedAccesses(2000, 7)
	test := mixedAccesses(2000, 8)

	models := StreamModels(train, 3)
	bank := NewBank(func() counters.Predictor {
		c := counters.NewTwoBit()
		c.SetValue(2)
		return c
	})
	for pc, m := range models {
		d, err := core.FromModel(m, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		bank.Install(pc, d.Machine.NewRunner())
	}
	managed := New(2, 8)
	managed.Allocate = bank
	managedStats := Run(managed, test)
	base := Run(New(2, 8), test)

	if managedStats.Coverage() <= base.Coverage() {
		t.Errorf("FSM-directed coverage %v should beat always-allocate %v",
			managedStats.Coverage(), base.Coverage())
	}
}

func TestStreamModels(t *testing.T) {
	models := StreamModels(mixedAccesses(1000, 3), 3)
	if len(models) == 0 {
		t.Fatal("no models profiled")
	}
	// The streaming PC's buffers are mostly useful; the random PC's are
	// not.
	frac := func(pc uint64) float64 {
		m, ok := models[pc]
		if !ok {
			t.Fatalf("no model for %#x", pc)
		}
		var ones, total uint64
		for _, h := range m.Histories() {
			c := m.Count(h)
			ones += c.Ones
			total += c.Total()
		}
		if total == 0 {
			return 0
		}
		return float64(ones) / float64(total)
	}
	if frac(0x10) < 0.9 {
		t.Errorf("streaming continuity = %v, want ~1", frac(0x10))
	}
	if frac(0x20) > 0.05 {
		t.Errorf("random continuity = %v, want ~0", frac(0x20))
	}
}

func TestStatsEdgeCases(t *testing.T) {
	if (Stats{}).Coverage() != 0 || (Stats{}).WasteRate() != 0 {
		t.Error("empty stats should be zero")
	}
}
