// Package loadspec implements the load-speculation application of §2.1:
// memory disambiguation. A load may issue before an older store whose
// address is not yet known; if the store turns out to alias the load, the
// speculation fails and costs a recovery, otherwise it hides latency.
// A per-load FSM predictor — a conflict history machine, exactly the
// kind the design flow generates — decides whether to speculate.
//
// The simulator consumes pairs of (load, older-store) address events and
// scores policies by net benefit: cycles saved by successful speculation
// minus recovery cycles for mis-speculation.
package loadspec

import (
	"fsmpredict/internal/counters"
	"fsmpredict/internal/markov"
)

// Op is one dynamic load with one unresolved older store.
type Op struct {
	// LoadPC identifies the static load.
	LoadPC uint64
	// Conflict reports whether the older store aliased the load (known
	// only after the store resolves; the predictor must guess first).
	Conflict bool
}

// Costs models the §2.1 trade-off.
type Costs struct {
	// SpecWin is the cycles saved when a speculated load does not
	// conflict.
	SpecWin float64
	// SpecLoss is the recovery cycles when a speculated load conflicts.
	SpecLoss float64
}

// DefaultCosts reflect a short pipeline: conflicts are several times
// more expensive than the latency a successful speculation hides.
func DefaultCosts() Costs { return Costs{SpecWin: 2, SpecLoss: 8} }

// Result tallies a policy run.
type Result struct {
	Ops        int
	Speculated int
	Conflicts  int // conflicts among speculated loads (mis-speculations)
	Missed     int // non-speculated loads that would have been safe
}

// Benefit returns the policy's net cycles saved per op under the costs.
func (r Result) Benefit(c Costs) float64 {
	if r.Ops == 0 {
		return 0
	}
	saved := float64(r.Speculated-r.Conflicts)*c.SpecWin - float64(r.Conflicts)*c.SpecLoss
	return saved / float64(r.Ops)
}

// Policy decides, per load, whether to speculate.
type Policy interface {
	// Speculate returns the decision for the load at pc.
	Speculate(pc uint64) bool
	// Resolve informs the policy of the actual conflict outcome.
	Resolve(pc uint64, conflict bool)
}

// Run drives a policy over the ops.
func Run(p Policy, ops []Op) Result {
	var r Result
	for _, op := range ops {
		r.Ops++
		if p.Speculate(op.LoadPC) {
			r.Speculated++
			if op.Conflict {
				r.Conflicts++
			}
		} else if !op.Conflict {
			r.Missed++
		}
		p.Resolve(op.LoadPC, op.Conflict)
	}
	return r
}

// Always speculates unconditionally (or never, when false) — the naive
// baselines.
type Always bool

// Speculate returns the fixed decision.
func (a Always) Speculate(uint64) bool { return bool(a) }

// Resolve is a no-op.
func (Always) Resolve(uint64, bool) {}

// PerPC keeps one predictor per static load, created by the factory.
// Each predictor observes the load's no-conflict history (1 = safe) and
// its prediction is the speculation decision.
type PerPC struct {
	factory func() counters.Predictor
	byPC    map[uint64]counters.Predictor
}

// NewPerPC builds a per-load policy from a predictor factory.
func NewPerPC(factory func() counters.Predictor) *PerPC {
	return &PerPC{factory: factory, byPC: map[uint64]counters.Predictor{}}
}

func (p *PerPC) predictor(pc uint64) counters.Predictor {
	c := p.byPC[pc]
	if c == nil {
		c = p.factory()
		p.byPC[pc] = c
	}
	return c
}

// Install assigns a specific predictor instance to a load (used to
// deploy per-load designed FSMs).
func (p *PerPC) Install(pc uint64, c counters.Predictor) { p.byPC[pc] = c }

// Speculate consults the load's predictor.
func (p *PerPC) Speculate(pc uint64) bool { return p.predictor(pc).Predict() }

// Resolve trains the load's predictor with 1 = no conflict (safe).
func (p *PerPC) Resolve(pc uint64, conflict bool) {
	p.predictor(pc).Update(!conflict)
}

// ConflictModels profiles each load's no-conflict bit stream into an
// order-N Markov model — the §4 design-flow input for building per-load
// speculation FSMs.
func ConflictModels(ops []Op, order int) map[uint64]*markov.Model {
	models := map[uint64]*markov.Model{}
	hists := map[uint64][]bool{}
	for _, op := range ops {
		hists[op.LoadPC] = append(hists[op.LoadPC], !op.Conflict)
	}
	for pc, bits := range hists {
		m := markov.New(order)
		m.AddBools(bits)
		models[pc] = m
	}
	return models
}
