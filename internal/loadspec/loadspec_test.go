package loadspec

import (
	"math/rand"
	"testing"

	"fsmpredict/internal/core"
	"fsmpredict/internal/counters"
)

// patternedOps builds a workload of three loads: one never conflicts,
// one always conflicts, and one conflicts in a repeating pattern (every
// fourth execution) — the §2.1 case where history beats counting.
func patternedOps(n int) []Op {
	var ops []Op
	for i := 0; i < n; i++ {
		ops = append(ops,
			Op{LoadPC: 0x10, Conflict: false},
			Op{LoadPC: 0x20, Conflict: true},
			Op{LoadPC: 0x30, Conflict: i%4 == 3},
		)
	}
	return ops
}

func TestBaselines(t *testing.T) {
	ops := patternedOps(1000)
	always := Run(Always(true), ops)
	never := Run(Always(false), ops)
	if always.Speculated != always.Ops {
		t.Error("Always(true) must speculate everything")
	}
	if never.Speculated != 0 || never.Missed == 0 {
		t.Errorf("Always(false) stats wrong: %+v", never)
	}
	costs := DefaultCosts()
	// With a 1/3 always-conflicting load, blind speculation loses money.
	if always.Benefit(costs) >= never.Benefit(costs)+1.0 {
		t.Errorf("blind speculation benefit %v suspiciously high", always.Benefit(costs))
	}
}

func TestCounterPolicyLearnsStableLoads(t *testing.T) {
	ops := patternedOps(1000)
	p := NewPerPC(func() counters.Predictor {
		c := counters.NewTwoBit()
		c.SetValue(2)
		return c
	})
	r := Run(p, ops)
	costs := DefaultCosts()
	if r.Benefit(costs) <= Run(Always(true), patternedOps(1000)).Benefit(costs) {
		t.Error("counter policy should beat blind speculation")
	}
	// The always-conflicting load must be (almost) never speculated.
	solo := NewPerPC(func() counters.Predictor {
		c := counters.NewTwoBit()
		c.SetValue(2)
		return c
	})
	rr := Run(solo, repeatOp(0x20, true, 500))
	if rr.Conflicts > 3 {
		t.Errorf("counter kept speculating a hostile load: %d conflicts", rr.Conflicts)
	}
}

func repeatOp(pc uint64, conflict bool, n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{LoadPC: pc, Conflict: conflict}
	}
	return ops
}

// TestFSMPolicyCapturesConflictPattern: the every-fourth-conflicts load
// is fully predictable from history; the designed FSM speculates the
// three safe executions and skips the conflicting one, which no
// saturating counter can do.
func TestFSMPolicyCapturesConflictPattern(t *testing.T) {
	train := patternedOps(2000)
	test := patternedOps(1500)

	models := ConflictModels(train, 4)
	fsmPolicy := NewPerPC(func() counters.Predictor {
		c := counters.NewTwoBit()
		c.SetValue(2)
		return c
	})
	for pc, m := range models {
		d, err := core.FromModel(m, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		fsmPolicy.Install(pc, d.Machine.NewRunner())
	}
	fsmRes := Run(fsmPolicy, test)

	ctrPolicy := NewPerPC(func() counters.Predictor {
		c := counters.NewTwoBit()
		c.SetValue(2)
		return c
	})
	ctrRes := Run(ctrPolicy, test)

	costs := DefaultCosts()
	if fsmRes.Benefit(costs) <= ctrRes.Benefit(costs) {
		t.Errorf("FSM policy benefit %.3f should beat counter policy %.3f",
			fsmRes.Benefit(costs), ctrRes.Benefit(costs))
	}
	// On the patterned load alone, the FSM should be near-perfect:
	// speculate 3/4 of executions with almost no conflicts.
	var patterned []Op
	for i := 0; i < 1000; i++ {
		patterned = append(patterned, Op{LoadPC: 0x30, Conflict: i%4 == 3})
	}
	soloModels := ConflictModels(patterned, 4)
	d, err := core.FromModel(soloModels[0x30], core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	solo := NewPerPC(func() counters.Predictor { return counters.Static(true) })
	solo.Install(0x30, d.Machine.NewRunner())
	sr := Run(solo, patterned)
	if sr.Conflicts > 5 {
		t.Errorf("FSM mis-speculated %d times on a deterministic pattern", sr.Conflicts)
	}
	if sr.Speculated < 700 {
		t.Errorf("FSM speculated only %d of ~750 safe executions", sr.Speculated)
	}
}

func TestConflictModels(t *testing.T) {
	ops := patternedOps(100)
	models := ConflictModels(ops, 3)
	if len(models) != 3 {
		t.Fatalf("models = %d, want 3", len(models))
	}
	// The never-conflicting load's model must be all ones.
	m := models[0x10]
	for _, h := range m.Histories() {
		if m.Count(h).Zeros != 0 {
			t.Error("safe load should never record a conflict")
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ops := make([]Op, 5000)
	for i := range ops {
		ops[i] = Op{LoadPC: uint64(rng.Intn(8)) * 4, Conflict: rng.Intn(3) == 0}
	}
	mk := func() Result {
		return Run(NewPerPC(func() counters.Predictor { return counters.NewResetting(4, 3) }), ops)
	}
	if mk() != mk() {
		t.Error("policy run not deterministic")
	}
}

func TestBenefitEmpty(t *testing.T) {
	if (Result{}).Benefit(DefaultCosts()) != 0 {
		t.Error("empty result should have zero benefit")
	}
}
