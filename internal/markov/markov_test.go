package markov

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"fsmpredict/internal/bitseq"
)

// paperTrace is the worked example trace t from §4.2.
const paperTrace = "0000 1000 1011 1101 1110 1111"

func TestPaperExampleProbabilities(t *testing.T) {
	m := New(2)
	m.AddTrace(bitseq.MustFromString(paperTrace))

	cases := []struct {
		hist  string
		zeros uint64
		ones  uint64
	}{
		{"00", 3, 2}, // P[1|00] = 2/5
		{"01", 2, 3}, // P[1|01] = 3/5
		{"10", 1, 3}, // P[1|10] = 3/4
		{"11", 2, 6}, // P[1|11] = 6/8
	}
	for _, c := range cases {
		h, _ := bitseq.ParseHistory(c.hist)
		got := m.Count(h)
		if got.Zeros != c.zeros || got.Ones != c.ones {
			t.Errorf("Count(%s) = %+v, want {%d %d}", c.hist, got, c.zeros, c.ones)
		}
	}
	if m.Total() != 22 {
		t.Errorf("Total = %d, want 22", m.Total())
	}
}

func TestP1AndSeen(t *testing.T) {
	m := New(3)
	m.Observe(0b101, true)
	m.Observe(0b101, true)
	m.Observe(0b101, false)
	p, ok := m.P1(0b101)
	if !ok || p < 0.66 || p > 0.67 {
		t.Errorf("P1(101) = %v/%v, want ~2/3", p, ok)
	}
	if _, ok := m.P1(0b000); ok {
		t.Error("P1 of unseen history should report unseen")
	}
	if m.Seen(0b000) {
		t.Error("Seen(000) should be false")
	}
	if !m.Seen(0b101) {
		t.Error("Seen(101) should be true")
	}
}

func TestObserveN(t *testing.T) {
	m := New(2)
	m.ObserveN(0b01, true, 10)
	m.ObserveN(0b01, false, 5)
	c := m.Count(0b01)
	if c.Ones != 10 || c.Zeros != 5 {
		t.Fatalf("Count = %+v, want {5 10}", c)
	}
}

func TestMergeEqualsAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mkTrace := func(n int) *bitseq.Bits {
		b := &bitseq.Bits{}
		for i := 0; i < n; i++ {
			b.Append(rng.Intn(3) != 0)
		}
		return b
	}
	t1, t2 := mkTrace(500), mkTrace(700)

	a := New(4)
	a.AddTrace(t1)
	b := New(4)
	b.AddTrace(t2)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}

	// Aggregate built from both traces independently (window does not span
	// traces, matching per-program model merging).
	agg := New(4)
	agg.AddTrace(t1)
	agg.AddTrace(t2)

	if a.Total() != agg.Total() || a.Distinct() != agg.Distinct() {
		t.Fatalf("merge mismatch: total %d vs %d, distinct %d vs %d",
			a.Total(), agg.Total(), a.Distinct(), agg.Distinct())
	}
	for _, h := range agg.Histories() {
		if a.Count(h) != agg.Count(h) {
			t.Fatalf("Count(%d) = %+v vs %+v", h, a.Count(h), agg.Count(h))
		}
	}
}

func TestMergeOrderMismatch(t *testing.T) {
	if err := New(2).Merge(New(3)); err == nil {
		t.Fatal("expected order mismatch error")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := New(2)
	m.Observe(1, true)
	c := m.Clone()
	c.Observe(1, true)
	if m.Count(1).Ones != 1 || c.Count(1).Ones != 2 {
		t.Fatal("clone not independent")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	m := New(5)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		m.Observe(rng.Uint32(), rng.Intn(2) == 0)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Order() != 5 || got.Total() != m.Total() || got.Distinct() != m.Distinct() {
		t.Fatalf("round trip mismatch: %d/%d/%d vs %d/%d/%d",
			got.Order(), got.Total(), got.Distinct(), m.Order(), m.Total(), m.Distinct())
	}
	for _, h := range m.Histories() {
		if got.Count(h) != m.Count(h) {
			t.Fatalf("Count(%d) mismatch", h)
		}
	}
}

func TestReadErrors(t *testing.T) {
	for _, s := range []string{"", "bogus 2\n", "markov 2\nzz 1 2\n", "markov 2\n01 x y\n"} {
		if _, err := Read(bytes.NewBufferString(s)); err == nil {
			t.Errorf("Read(%q): expected error", s)
		}
	}
}

func TestPartitionPaperExample(t *testing.T) {
	m := New(2)
	m.AddTrace(bitseq.MustFromString(paperTrace))
	p, err := m.Partition(PartitionOptions{BiasThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// §4.3: predict 1 = {01, 10, 11}, predict 0 = {00}, don't care empty.
	if len(p.PredictOne) != 3 || len(p.PredictZero) != 1 || len(p.DontCare) != 0 {
		t.Fatalf("partition sizes = %d/%d/%d, want 3/1/0",
			len(p.PredictOne), len(p.PredictZero), len(p.DontCare))
	}
	if p.PredictZero[0].String() != "00" {
		t.Errorf("predict 0 = %v, want [00]", p.PredictZero)
	}
	want := map[string]bool{"01": true, "10": true, "11": true}
	for _, c := range p.PredictOne {
		if !want[c.String()] {
			t.Errorf("unexpected predict-1 cube %v", c)
		}
	}
}

func TestPartitionDontCareBudget(t *testing.T) {
	m := New(3)
	// History 000 seen 1000 times (always 1); history 111 seen once.
	m.ObserveN(0b000, true, 1000)
	m.Observe(0b111, true)
	p, err := m.Partition(PartitionOptions{BiasThreshold: 0.5, DontCareBudget: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// 111 (1 of 1001 observations, under 1%) should be a don't care along
	// with all six unseen histories.
	if len(p.DontCare) != 7 {
		t.Fatalf("don't care size = %d, want 7", len(p.DontCare))
	}
	if len(p.PredictOne) != 1 || p.PredictOne[0].String() != "000" {
		t.Fatalf("predict 1 = %v, want [000]", p.PredictOne)
	}
}

func TestPartitionKeepUnseen(t *testing.T) {
	m := New(2)
	m.Observe(0b00, true)
	p, err := m.Partition(PartitionOptions{BiasThreshold: 0.5, KeepUnseen: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.DontCare) != 0 || len(p.PredictZero) != 3 || len(p.PredictOne) != 1 {
		t.Fatalf("sizes = %d/%d/%d, want 1/3/0 for one/zero/dc",
			len(p.PredictOne), len(p.PredictZero), len(p.DontCare))
	}
}

func TestPartitionValidation(t *testing.T) {
	m := New(2)
	if _, err := m.Partition(PartitionOptions{BiasThreshold: 0}); err == nil {
		t.Error("expected error for zero bias threshold")
	}
	if _, err := m.Partition(PartitionOptions{BiasThreshold: 0.5, DontCareBudget: 1}); err == nil {
		t.Error("expected error for budget 1")
	}
}

func TestPartitionCoversAllHistoriesQuick(t *testing.T) {
	// The three sets always partition the full history space.
	f := func(seed int64, orderRaw uint8, thrRaw uint8) bool {
		order := int(orderRaw%6) + 1
		thr := 0.3 + float64(thrRaw%60)/100
		m := New(order)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 300; i++ {
			m.Observe(rng.Uint32(), rng.Intn(2) == 0)
		}
		p, err := m.Partition(PartitionOptions{BiasThreshold: thr, DontCareBudget: 0.01})
		if err != nil {
			return false
		}
		n := len(p.PredictOne) + len(p.PredictZero) + len(p.DontCare)
		if n != 1<<uint(order) {
			return false
		}
		seen := map[uint32]int{}
		for _, c := range p.PredictOne {
			seen[c.Value]++
		}
		for _, c := range p.PredictZero {
			seen[c.Value]++
		}
		for _, c := range p.DontCare {
			seen[c.Value]++
		}
		for _, k := range seen {
			if k != 1 {
				return false
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNewOrderPanics(t *testing.T) {
	for _, o := range []int{0, 25} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d): expected panic", o)
				}
			}()
			New(o)
		}()
	}
}
