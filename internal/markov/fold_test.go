package markov

import (
	"bytes"
	"math/rand"
	"testing"

	"fsmpredict/internal/bitseq"
)

// randomTraces generates a deterministic set of bit streams with varied
// lengths, including streams shorter than any window order so warm-up
// prefixes of every length appear.
func randomTraces(rng *rand.Rand, n int) []*bitseq.Bits {
	traces := make([]*bitseq.Bits, n)
	for i := range traces {
		length := rng.Intn(64)
		if i%3 == 0 {
			length = rng.Intn(8) // exercise streams shorter than the order
		}
		b := &bitseq.Bits{}
		p := 0.2 + 0.6*rng.Float64()
		for j := 0; j < length; j++ {
			b.Append(rng.Float64() < p)
		}
		traces[i] = b
	}
	return traces
}

// TestFoldToMatchesDirectTraining is the core model-algebra property:
// folding an order-K model down to order k is observation-for-observation
// identical to training at order k directly, for every k ≤ K, with K
// crossing the denseOrder boundary so both dense and sparse source tables
// are exercised.
func TestFoldToMatchesDirectTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, K := range []int{1, 2, 5, denseOrder, denseOrder + 2} {
		traces := randomTraces(rng, 24)
		src := New(K)
		for _, b := range traces {
			src.AddTrace(b)
		}
		for k := 1; k <= K; k++ {
			folded, err := src.FoldTo(k)
			if err != nil {
				t.Fatalf("FoldTo(%d) from order %d: %v", k, K, err)
			}
			direct := New(k)
			for _, b := range traces {
				direct.AddTrace(b)
			}
			if !folded.Equal(direct) {
				t.Fatalf("K=%d k=%d: folded model differs from direct training\nfolded:  total=%d distinct=%d warmups=%d\ndirect:  total=%d distinct=%d warmups=%d",
					K, k, folded.Total(), folded.Distinct(), folded.Warmups(),
					direct.Total(), direct.Distinct(), direct.Warmups())
			}
		}
	}
}

// TestFoldToAddBools checks the AddBools entry point records the same
// warm-up prefixes as AddTrace.
func TestFoldToAddBools(t *testing.T) {
	vs := []bool{true, false, true, true, false, true, false, false, true}
	b := &bitseq.Bits{}
	for _, v := range vs {
		b.Append(v)
	}
	ma, mb := New(4), New(4)
	ma.AddTrace(b)
	mb.AddBools(vs)
	if !ma.Equal(mb) {
		t.Fatal("AddTrace and AddBools produced different models")
	}
	fa, _ := ma.FoldTo(2)
	fb, _ := mb.FoldTo(2)
	if !fa.Equal(fb) {
		t.Fatal("folds of AddTrace and AddBools models differ")
	}
}

// TestFoldToComposes checks fold(K→j) == fold(fold(K→k)→j).
func TestFoldToComposes(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	src := New(10)
	for _, b := range randomTraces(rng, 16) {
		src.AddTrace(b)
	}
	oneStep, err := src.FoldTo(3)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := src.FoldTo(7)
	if err != nil {
		t.Fatal(err)
	}
	twoStep, err := mid.FoldTo(3)
	if err != nil {
		t.Fatal(err)
	}
	if !oneStep.Equal(twoStep) {
		t.Fatal("FoldTo does not compose: 10→3 differs from 10→7→3")
	}
}

// TestFoldToErrors covers the error paths: folding up and degenerate
// orders.
func TestFoldToErrors(t *testing.T) {
	m := New(4)
	if _, err := m.FoldTo(5); err == nil {
		t.Fatal("FoldTo above the model order should fail")
	}
	if _, err := m.FoldTo(0); err == nil {
		t.Fatal("FoldTo(0) should fail")
	}
	if c, err := m.FoldTo(4); err != nil || c == m {
		t.Fatalf("FoldTo(order) should clone: %v", err)
	}
}

// subtractSuite builds per-name models plus their merged aggregate at
// the given order from random traces.
func subtractSuite(t *testing.T, rng *rand.Rand, order, programs int) (map[string]*Model, *Model) {
	t.Helper()
	suite := make(map[string]*Model, programs)
	agg := New(order)
	for i := 0; i < programs; i++ {
		m := New(order)
		for _, b := range randomTraces(rng, 6) {
			m.AddTrace(b)
		}
		suite[string(rune('a'+i))] = m
		if err := agg.Merge(m); err != nil {
			t.Fatal(err)
		}
	}
	return suite, agg
}

// TestSubtractInvertsMerge is the Subtract property at both table
// representations: aggregate minus one member equals the merge of the
// others, for a dense order and a sparse (> denseOrder) order.
func TestSubtractInvertsMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for _, order := range []int{4, denseOrder + 1} {
		suite, agg := subtractSuite(t, rng, order, 4)
		for name, m := range suite {
			got := agg.Clone()
			if err := got.Subtract(m); err != nil {
				t.Fatalf("order %d: subtract %q: %v", order, name, err)
			}
			want := New(order)
			for other, om := range suite {
				if other == name {
					continue
				}
				if err := want.Merge(om); err != nil {
					t.Fatal(err)
				}
			}
			if !got.Equal(want) {
				t.Fatalf("order %d: aggregate minus %q differs from merge of others", order, name)
			}
		}
	}
}

// TestSubtractUnderflow checks mismatched subtraction fails cleanly and
// leaves the receiver unchanged, for count underflow, warm-up underflow,
// and order mismatch.
func TestSubtractUnderflow(t *testing.T) {
	m := New(3)
	m.Observe(0b101, true)
	big := New(3)
	big.Observe(0b101, true)
	big.Observe(0b101, true)
	before := m.Clone()
	if err := m.Subtract(big); err == nil {
		t.Fatal("subtracting more observations than present should fail")
	}
	if !m.Equal(before) {
		t.Fatal("failed Subtract mutated the receiver")
	}

	// Warm-up underflow: same counts, but the subtrahend carries a
	// warm-up prefix the receiver lacks.
	b := &bitseq.Bits{}
	for _, v := range []bool{true, false, true, true} {
		b.Append(v)
	}
	traced := New(3)
	traced.AddTrace(b)
	plain := New(3)
	traced.Each(func(h uint32, c Count) {
		plain.ObserveN(h, false, c.Zeros)
		plain.ObserveN(h, true, c.Ones)
	})
	if err := plain.Subtract(traced); err == nil {
		t.Fatal("subtracting unseen warm-up prefixes should fail")
	}

	if err := New(3).Subtract(New(4)); err == nil {
		t.Fatal("order mismatch should fail")
	}
}

// TestWarmupSerializationRoundTrip checks warm-up prefixes survive
// WriteTo/Read, so persisted models still fold exactly.
func TestWarmupSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	m := New(6)
	for _, b := range randomTraces(rng, 10) {
		m.AddTrace(b)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatalf("round trip lost state: warmups %d vs %d", got.Warmups(), m.Warmups())
	}
	f1, err := m.FoldTo(2)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := got.FoldTo(2)
	if err != nil {
		t.Fatal(err)
	}
	if !f1.Equal(f2) {
		t.Fatal("round-tripped model folds differently")
	}
}

// FuzzFoldTo feeds arbitrary byte strings as trace material: the first
// two bytes pick the source order K and target order k, the rest split
// into variable-length traces of their bits. Folding the order-K model
// must reproduce direct order-k training exactly.
func FuzzFoldTo(f *testing.F) {
	f.Add([]byte{5, 2, 0xac, 0x31, 0x07})
	f.Add([]byte{uint8(denseOrder + 2), uint8(denseOrder), 0xff, 0x00, 0x5a, 0x5a, 0x99})
	f.Add([]byte{1, 1, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip()
		}
		K := 1 + int(data[0])%(denseOrder+4) // cross the dense/sparse boundary
		k := 1 + int(data[1])%K
		src, direct := New(K), New(k)
		// Traces: each remaining byte b contributes a trace of its low
		// 1 + b%7 bits, so lengths vary and many are shorter than K.
		for _, by := range data[2:] {
			bits := &bitseq.Bits{}
			n := 1 + int(by)%7
			for j := 0; j < n; j++ {
				bits.Append(by>>uint(j)&1 == 1)
			}
			src.AddTrace(bits)
			direct.AddTrace(bits)
		}
		folded, err := src.FoldTo(k)
		if err != nil {
			t.Fatalf("FoldTo(%d) from order %d: %v", k, K, err)
		}
		if !folded.Equal(direct) {
			t.Fatalf("K=%d k=%d: folded model differs from direct training", K, k)
		}
	})
}
