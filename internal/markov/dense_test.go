package markov

import (
	"bytes"
	"math/rand"
	"testing"
)

// newSparse builds a model that uses the sparse map even at a dense-eligible
// order, serving as the differential oracle for the dense fast path.
func newSparse(order int) *Model {
	return &Model{order: order, counts: make(map[uint32]Count)}
}

// TestDenseMatchesSparse drives the dense and sparse representations with
// the same observation stream and checks every read-side API agrees.
func TestDenseMatchesSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, order := range []int{1, 3, 8, denseOrder} {
		d := New(order)
		s := newSparse(order)
		if d.dense == nil {
			t.Fatalf("order %d: expected dense representation", order)
		}
		vs := make([]bool, 4000)
		for i := range vs {
			vs[i] = rng.Intn(3) != 0
		}
		d.AddBools(vs)
		s.AddBools(vs)
		for i := 0; i < 50; i++ {
			h := uint32(rng.Intn(1 << uint(order)))
			n := uint64(rng.Intn(4))
			d.ObserveN(h, i%2 == 0, n)
			s.ObserveN(h, i%2 == 0, n)
		}

		if d.Total() != s.Total() {
			t.Fatalf("order %d: Total %d vs %d", order, d.Total(), s.Total())
		}
		for h := uint32(0); h < 1<<uint(order); h++ {
			if d.Count(h) != s.Count(h) {
				t.Fatalf("order %d: Count(%d) %+v vs %+v", order, h, d.Count(h), s.Count(h))
			}
			if d.Seen(h) != s.Seen(h) {
				t.Fatalf("order %d: Seen(%d) differs", order, h)
			}
			dp, dok := d.P1(h)
			sp, sok := s.P1(h)
			if dp != sp || dok != sok {
				t.Fatalf("order %d: P1(%d) (%v,%v) vs (%v,%v)", order, h, dp, dok, sp, sok)
			}
		}
		dh, sh := d.Histories(), s.Histories()
		if len(dh) != len(sh) {
			t.Fatalf("order %d: %d histories vs %d", order, len(dh), len(sh))
		}
		for i := range dh {
			if dh[i] != sh[i] {
				t.Fatalf("order %d: history %d: %d vs %d", order, i, dh[i], sh[i])
			}
		}
		// Distinct in dense mode counts only non-empty tallies; the sparse
		// map may hold zero-total entries from ObserveN(h, b, 0), so count
		// the non-empty ones for comparison.
		nonEmpty := 0
		for _, c := range s.counts {
			if c.Total() > 0 {
				nonEmpty++
			}
		}
		if d.Distinct() != nonEmpty {
			t.Fatalf("order %d: Distinct %d vs %d", order, d.Distinct(), nonEmpty)
		}

		var db, sb bytes.Buffer
		if _, err := d.WriteTo(&db); err != nil {
			t.Fatal(err)
		}
		if _, err := s.WriteTo(&sb); err != nil {
			t.Fatal(err)
		}
		if db.String() != sb.String() {
			t.Fatalf("order %d: serialized forms differ", order)
		}

		// Partition must be identical set for set.
		dp, err := d.Partition(DefaultPartitionOptions())
		if err != nil {
			t.Fatal(err)
		}
		sp, err := s.Partition(DefaultPartitionOptions())
		if err != nil {
			t.Fatal(err)
		}
		for name, pair := range map[string][2][]uint32{
			"on":  {dp.OnSet(), sp.OnSet()},
			"off": {dp.OffSet(), sp.OffSet()},
			"dc":  {dp.DCSet(), sp.DCSet()},
		} {
			if len(pair[0]) != len(pair[1]) {
				t.Fatalf("order %d: %s-set size %d vs %d", order, name, len(pair[0]), len(pair[1]))
			}
			for i := range pair[0] {
				if pair[0][i] != pair[1][i] {
					t.Fatalf("order %d: %s-set[%d] %d vs %d", order, name, i, pair[0][i], pair[1][i])
				}
			}
		}

		// Clone and Merge round-trip: clone, merge the clone back in, and
		// expect exactly doubled tallies in both representations.
		dc, sc := d.Clone(), s.Clone()
		if err := d.Merge(dc); err != nil {
			t.Fatal(err)
		}
		if err := s.Merge(sc); err != nil {
			t.Fatal(err)
		}
		for h := uint32(0); h < 1<<uint(order); h++ {
			if d.Count(h) != s.Count(h) {
				t.Fatalf("order %d: post-merge Count(%d) %+v vs %+v", order, h, d.Count(h), s.Count(h))
			}
		}
	}
}

// TestSparseOrderStillSparse pins the representation switch: orders above
// denseOrder must not allocate the 2^order dense table.
func TestSparseOrderStillSparse(t *testing.T) {
	m := New(denseOrder + 1)
	if m.dense != nil {
		t.Fatalf("order %d unexpectedly dense", denseOrder+1)
	}
	m.Observe(123, true)
	if !m.Seen(123) || m.Distinct() != 1 {
		t.Fatal("sparse model lost observation")
	}
}

func BenchmarkAddBoolsDense(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vs := make([]bool, 100_000)
	for i := range vs {
		vs[i] = rng.Intn(3) != 0
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New(10)
		m.AddBools(vs)
	}
}

func BenchmarkAddBoolsSparse(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vs := make([]bool, 100_000)
	for i := range vs {
		vs[i] = rng.Intn(3) != 0
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := newSparse(10)
		m.AddBools(vs)
	}
}
