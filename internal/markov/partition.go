package markov

import (
	"fmt"
	"sort"

	"fsmpredict/internal/bitseq"
)

// PartitionOptions controls the pattern-definition step of §4.3: which
// histories go into the "predict 1", "predict 0" and "don't care" sets.
type PartitionOptions struct {
	// BiasThreshold is the minimum empirical P[1|h] for a history to join
	// the predict-1 set. The paper uses 1/2 for branch prediction (minimize
	// mispredictions) and sweeps higher values for confidence estimation to
	// trade coverage for accuracy. Must be in (0,1].
	BiasThreshold float64
	// DontCareBudget is the maximum cumulative fraction of observations
	// whose histories may be moved to the don't-care set, least-frequent
	// first. The paper reports that a 1% budget roughly halves predictor
	// size with negligible accuracy impact. 0 disables frequency-based
	// don't cares.
	DontCareBudget float64
	// KeepUnseen forces never-observed histories into the predict-0 set
	// instead of the (default) don't-care set.
	KeepUnseen bool
}

// DefaultPartitionOptions mirror the paper's branch prediction setup:
// predict 1 on any history biased >= 1/2, with a 1% don't-care budget.
func DefaultPartitionOptions() PartitionOptions {
	return PartitionOptions{BiasThreshold: 0.5, DontCareBudget: 0.01}
}

// Partition is the outcome of the pattern-definition step: three disjoint
// sets of minterm cubes covering all 2^Order histories.
type Partition struct {
	Order       int
	PredictOne  []bitseq.Cube
	PredictZero []bitseq.Cube
	DontCare    []bitseq.Cube
}

// Partition classifies every possible history of the model into the three
// sets. Enumeration is over the full 2^Order space, so Order must be
// moderate (the paper never needs more than 10).
func (m *Model) Partition(opt PartitionOptions) (*Partition, error) {
	if opt.BiasThreshold <= 0 || opt.BiasThreshold > 1 {
		return nil, fmt.Errorf("markov: bias threshold %v out of range (0,1]", opt.BiasThreshold)
	}
	if opt.DontCareBudget < 0 || opt.DontCareBudget >= 1 {
		return nil, fmt.Errorf("markov: don't-care budget %v out of range [0,1)", opt.DontCareBudget)
	}
	if m.order > 22 {
		return nil, fmt.Errorf("markov: order %d too large to enumerate", m.order)
	}

	// Select the least-frequent observed histories for the don't-care set
	// until the budget of total observations is exhausted (§4.3).
	dcSet := make(map[uint32]bool)
	if opt.DontCareBudget > 0 {
		type hc struct {
			h uint32
			n uint64
		}
		seen := make([]hc, 0, m.Distinct())
		m.Each(func(h uint32, c Count) {
			seen = append(seen, hc{h, c.Total()})
		})
		sort.Slice(seen, func(i, j int) bool {
			if seen[i].n != seen[j].n {
				return seen[i].n < seen[j].n
			}
			return seen[i].h < seen[j].h
		})
		budget := uint64(float64(m.Total()) * opt.DontCareBudget)
		var used uint64
		for _, e := range seen {
			if used+e.n > budget {
				break
			}
			used += e.n
			dcSet[e.h] = true
		}
	}

	p := &Partition{Order: m.order}
	total := uint32(1) << uint(m.order)
	for h := uint32(0); h < total; h++ {
		cube := bitseq.Minterm(h, m.order)
		c := m.Count(h)
		seen := c.Total() > 0
		switch {
		case dcSet[h]:
			p.DontCare = append(p.DontCare, cube)
		case !seen && !opt.KeepUnseen:
			p.DontCare = append(p.DontCare, cube)
		case !seen: // KeepUnseen: unseen histories default to predict 0
			p.PredictZero = append(p.PredictZero, cube)
		case c.P1() >= opt.BiasThreshold:
			p.PredictOne = append(p.PredictOne, cube)
		default:
			p.PredictZero = append(p.PredictZero, cube)
		}
	}
	return p, nil
}

// OnSet returns the predict-1 minterm values.
func (p *Partition) OnSet() []uint32 { return cubeValues(p.PredictOne) }

// OffSet returns the predict-0 minterm values.
func (p *Partition) OffSet() []uint32 { return cubeValues(p.PredictZero) }

// DCSet returns the don't-care minterm values.
func (p *Partition) DCSet() []uint32 { return cubeValues(p.DontCare) }

func cubeValues(cs []bitseq.Cube) []uint32 {
	out := make([]uint32, len(cs))
	for i, c := range cs {
		out[i] = c.Value
	}
	return out
}
