package markov_test

import (
	"fmt"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/markov"
)

// ExampleModel reproduces the §4.2 worked example probabilities.
func ExampleModel() {
	m := markov.New(2)
	m.AddTrace(bitseq.MustFromString("0000 1000 1011 1101 1110 1111"))
	for h := uint32(0); h < 4; h++ {
		c := m.Count(h)
		fmt.Printf("P[1|%s] = %d/%d\n", bitseq.HistoryString(h, 2), c.Ones, c.Total())
	}
	// Output:
	// P[1|00] = 2/5
	// P[1|01] = 3/5
	// P[1|10] = 3/4
	// P[1|11] = 6/8
}
