// Package markov implements the Nth-order Markov model of §4.2 of the
// paper: for every N-bit history it records how often the next bit in the
// trace was a 0 or a 1. The model is the statistical substrate from which
// pattern sets ("predict 1", "predict 0", "don't care") are drawn.
//
// Histories follow the bitseq convention: the most recent bit is the LSB;
// string forms are written oldest-first.
package markov

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"fsmpredict/internal/bitseq"
)

// Count is the outcome tally for one history.
type Count struct {
	Zeros uint64
	Ones  uint64
}

// Total returns the number of observations for the history.
func (c Count) Total() uint64 { return c.Zeros + c.Ones }

// P1 returns the empirical probability that the next bit is 1. It returns
// 0 for an empty count.
func (c Count) P1() float64 {
	if t := c.Total(); t > 0 {
		return float64(c.Ones) / float64(t)
	}
	return 0
}

// denseOrder is the largest order stored as a flat 2^order array instead
// of a hash map. A dense order-12 table is 64 KiB — cheap next to the
// per-event hashing it saves on the AddTrace hot path, where every branch
// outcome is one Observe call.
const denseOrder = 12

// Model is an Nth-order Markov model over the binary alphabet. The table
// conceptually has 2^Order rows. Small orders (≤ denseOrder) are stored
// densely — counting is a single array index per event; larger orders keep
// the sparse map the paper notes is essential for per-branch models
// (§7.3), where only observed histories are stored. Create one with New.
type Model struct {
	order    int
	counts   map[uint32]Count // sparse table (order > denseOrder)
	dense    []Count          // dense table (order <= denseOrder)
	distinct int              // observed histories in dense mode

	// warmups is a multiset of stream warm-up prefixes: for every stream
	// profiled with AddTrace/AddBools, the first min(len, order) bits.
	// An order-N window skips the first N transitions of each stream, so
	// the counts alone cannot reproduce what a shorter window would have
	// seen there; FoldTo replays these prefixes to recover those
	// transitions exactly. Keys pack min(len, order) in the high word and
	// the prefix bits in the low word (bit i = stream element i, oldest
	// first); values are multiplicities.
	warmups map[uint64]uint64
}

// New returns an empty model of the given order (1..24). Orders beyond the
// paper's maximum of 10 are allowed for experimentation but enumeration
// helpers become proportionally more expensive.
func New(order int) *Model {
	if order < 1 || order > 24 {
		panic(fmt.Sprintf("markov: order %d out of range [1,24]", order))
	}
	if order <= denseOrder {
		return &Model{order: order, dense: make([]Count, 1<<uint(order))}
	}
	return &Model{order: order, counts: make(map[uint32]Count)}
}

// Order returns the model's history length N.
func (m *Model) Order() int { return m.order }

// Observe records that history h was followed by bit next.
func (m *Model) Observe(h uint32, next bool) {
	h &= m.mask()
	if m.dense != nil {
		c := &m.dense[h]
		if c.Total() == 0 {
			m.distinct++
		}
		if next {
			c.Ones++
		} else {
			c.Zeros++
		}
		return
	}
	c := m.counts[h]
	if next {
		c.Ones++
	} else {
		c.Zeros++
	}
	m.counts[h] = c
}

// ObserveN records n identical observations. n == 0 records nothing (the
// history is not marked as seen).
func (m *Model) ObserveN(h uint32, next bool, n uint64) {
	if n == 0 {
		return
	}
	h &= m.mask()
	if m.dense != nil {
		c := &m.dense[h]
		if c.Total() == 0 {
			m.distinct++
		}
		if next {
			c.Ones += n
		} else {
			c.Zeros += n
		}
		return
	}
	c := m.counts[h]
	if next {
		c.Ones += n
	} else {
		c.Zeros += n
	}
	m.counts[h] = c
}

// AddTrace slides an Order-wide window over the trace and records every
// transition that has a fully defined history, matching the paper's
// counting in §4.2 (the worked example reproduces P[1|00] = 2/5 for trace
// t).
func (m *Model) AddTrace(b *bitseq.Bits) {
	h := bitseq.NewHistory(m.order)
	var prefix uint32
	for i := 0; i < b.Len(); i++ {
		v := b.At(i)
		if i < m.order && v {
			prefix |= 1 << uint(i)
		}
		if h.Warm() {
			m.Observe(h.Value(), v)
		}
		h.Push(v)
	}
	m.addWarmup(warmupKey(prefix, min(b.Len(), m.order)), 1)
}

// AddBools is AddTrace for a plain boolean slice.
func (m *Model) AddBools(vs []bool) {
	h := bitseq.NewHistory(m.order)
	var prefix uint32
	for i, v := range vs {
		if i < m.order && v {
			prefix |= 1 << uint(i)
		}
		if h.Warm() {
			m.Observe(h.Value(), v)
		}
		h.Push(v)
	}
	m.addWarmup(warmupKey(prefix, min(len(vs), m.order)), 1)
}

// warmupKey packs a warm-up prefix of n bits (bit i = stream element i,
// oldest first) into a multiset key.
func warmupKey(bits uint32, n int) uint64 {
	return uint64(n)<<32 | uint64(bits)
}

// warmupString renders a warm-up key as its stream bits, oldest first.
func warmupString(key uint64) string {
	n := int(key >> 32)
	buf := make([]byte, n)
	for i := 0; i < n; i++ {
		buf[i] = '0' + byte(key>>uint(i)&1)
	}
	return string(buf)
}

// addWarmup records count copies of a warm-up prefix. Zero-length
// prefixes (empty streams) contribute nothing at any order and are not
// stored.
func (m *Model) addWarmup(key uint64, count uint64) {
	if key>>32 == 0 || count == 0 {
		return
	}
	if m.warmups == nil {
		m.warmups = make(map[uint64]uint64)
	}
	m.warmups[key] += count
}

// Warmups returns the number of recorded stream warm-up prefixes,
// counting multiplicity. Models built only with Observe/ObserveN have
// none and fold as pure count tables.
func (m *Model) Warmups() int {
	var n uint64
	for _, c := range m.warmups {
		n += c
	}
	return int(n)
}

// Count returns the tally for history h (zero if unseen).
func (m *Model) Count(h uint32) Count {
	h &= m.mask()
	if m.dense != nil {
		return m.dense[h]
	}
	return m.counts[h]
}

// Seen reports whether h was observed at least once.
func (m *Model) Seen(h uint32) bool {
	return m.Count(h).Total() > 0
}

// P1 returns the empirical P[next=1 | h] and whether h was ever observed.
func (m *Model) P1(h uint32) (float64, bool) {
	c := m.Count(h)
	if c.Total() == 0 {
		return 0, false
	}
	return c.P1(), true
}

// Total returns the number of observations across all histories.
func (m *Model) Total() uint64 {
	var t uint64
	if m.dense != nil {
		for _, c := range m.dense {
			t += c.Total()
		}
		return t
	}
	for _, c := range m.counts {
		t += c.Total()
	}
	return t
}

// Distinct returns the number of observed histories.
func (m *Model) Distinct() int {
	if m.dense != nil {
		return m.distinct
	}
	return len(m.counts)
}

// Each calls fn for every observed history. Dense models iterate in
// ascending history order; sparse models in map order — callers needing a
// fixed order must sort (or use Histories).
func (m *Model) Each(fn func(h uint32, c Count)) {
	if m.dense != nil {
		for h, c := range m.dense {
			if c.Total() > 0 {
				fn(uint32(h), c)
			}
		}
		return
	}
	for h, c := range m.counts {
		fn(h, c)
	}
}

// Histories returns the observed histories in ascending order.
func (m *Model) Histories() []uint32 {
	hs := make([]uint32, 0, m.Distinct())
	m.Each(func(h uint32, _ Count) { hs = append(hs, h) })
	if m.dense == nil {
		sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	}
	return hs
}

// Merge adds every observation of other into m. The orders must match.
// Merging is how aggregate suite models (§6) and cross-training models
// (§6.3) are built.
func (m *Model) Merge(other *Model) error {
	if other.order != m.order {
		return fmt.Errorf("markov: cannot merge order %d into order %d", other.order, m.order)
	}
	other.Each(func(h uint32, c Count) {
		m.ObserveN(h, false, c.Zeros)
		m.ObserveN(h, true, c.Ones)
	})
	for key, count := range other.warmups {
		m.addWarmup(key, count)
	}
	return nil
}

// Subtract removes every observation of other from m, inverting Merge:
// after m.Merge(x), m.Subtract(x) restores m exactly (counts are integer
// tallies, so the algebra is lossless). It returns an error — leaving m
// unchanged — if other contains an observation or warm-up prefix m does
// not, which signals the caller is subtracting a model that was never
// merged in.
func (m *Model) Subtract(other *Model) error {
	if other.order != m.order {
		return fmt.Errorf("markov: cannot subtract order %d from order %d", other.order, m.order)
	}
	var err error
	other.Each(func(h uint32, c Count) {
		if err != nil {
			return
		}
		have := m.Count(h)
		if have.Zeros < c.Zeros || have.Ones < c.Ones {
			err = fmt.Errorf("markov: subtract underflow at history %s: have %d/%d, removing %d/%d",
				bitseq.HistoryString(h, m.order), have.Zeros, have.Ones, c.Zeros, c.Ones)
		}
	})
	if err != nil {
		return err
	}
	for key, count := range other.warmups {
		if m.warmups[key] < count {
			return fmt.Errorf("markov: subtract underflow for warm-up prefix %q: have %d, removing %d",
				warmupString(key), m.warmups[key], count)
		}
	}
	other.Each(func(h uint32, c Count) { m.remove(h, c) })
	for key, count := range other.warmups {
		if left := m.warmups[key] - count; left == 0 {
			delete(m.warmups, key)
		} else {
			m.warmups[key] = left
		}
	}
	return nil
}

// remove subtracts c from the tally of history h. The caller has already
// verified no underflow occurs.
func (m *Model) remove(h uint32, c Count) {
	h &= m.mask()
	if m.dense != nil {
		d := &m.dense[h]
		d.Zeros -= c.Zeros
		d.Ones -= c.Ones
		if c.Total() > 0 && d.Total() == 0 {
			m.distinct--
		}
		return
	}
	d := m.counts[h]
	d.Zeros -= c.Zeros
	d.Ones -= c.Ones
	if d.Total() == 0 {
		delete(m.counts, h)
	} else {
		m.counts[h] = d
	}
}

// FoldTo derives the exact order-k model (k ≤ Order) the same streams
// would have produced if profiled at order k directly. Because the most
// recent bit is the LSB, an order-k history is the low k bits of an
// order-N history, so counts fold by summing over the high N−k bits.
// Transitions at stream offsets [k, N) — which the order-N window was
// still warming up for — are recovered by replaying the recorded warm-up
// prefixes. Models built only with Observe/ObserveN carry no prefixes
// and fold as pure count tables.
func (m *Model) FoldTo(k int) (*Model, error) {
	if k < 1 {
		return nil, fmt.Errorf("markov: fold order %d out of range", k)
	}
	if k > m.order {
		return nil, fmt.Errorf("markov: cannot fold order %d up to %d", m.order, k)
	}
	if k == m.order {
		return m.Clone(), nil
	}
	out := New(k)
	kmask := uint32(1)<<uint(k) - 1
	m.Each(func(h uint32, c Count) {
		out.ObserveN(h&kmask, false, c.Zeros)
		out.ObserveN(h&kmask, true, c.Ones)
	})
	for key, count := range m.warmups {
		n := int(key >> 32)
		var reg uint32
		for i := 0; i < n; i++ {
			b := key>>uint(i)&1 == 1
			if i >= k {
				out.ObserveN(reg&kmask, b, count)
			}
			reg = reg<<1 | uint32(key>>uint(i)&1)
		}
		out.addWarmup(warmupKey(uint32(key)&(uint32(1)<<uint(min(n, k))-1), min(n, k)), count)
	}
	return out, nil
}

// Equal reports whether two models are observation-for-observation
// identical: same order, same tally for every history, and the same
// warm-up prefix multiset.
func (m *Model) Equal(other *Model) bool {
	if m.order != other.order || m.Distinct() != other.Distinct() {
		return false
	}
	equal := true
	m.Each(func(h uint32, c Count) {
		if other.Count(h) != c {
			equal = false
		}
	})
	if !equal || len(m.warmups) != len(other.warmups) {
		return false
	}
	for key, count := range m.warmups {
		if other.warmups[key] != count {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the model.
func (m *Model) Clone() *Model {
	c := New(m.order)
	if m.dense != nil {
		copy(c.dense, m.dense)
		c.distinct = m.distinct
	} else {
		m.Each(func(h uint32, v Count) {
			c.ObserveN(h, false, v.Zeros)
			c.ObserveN(h, true, v.Ones)
		})
	}
	for key, count := range m.warmups {
		c.addWarmup(key, count)
	}
	return c
}

func (m *Model) mask() uint32 {
	return uint32(1)<<uint(m.order) - 1
}

// WriteTo serializes the model as text: a header line "markov <order>"
// followed by "history zeros ones" rows in ascending history order, then
// "warmup <prefix> <count>" rows (stream bits oldest-first) for any
// recorded warm-up prefixes, in ascending key order.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	k, err := fmt.Fprintf(bw, "markov %d\n", m.order)
	n += int64(k)
	if err != nil {
		return n, err
	}
	for _, h := range m.Histories() {
		c := m.Count(h)
		k, err = fmt.Fprintf(bw, "%s %d %d\n", bitseq.HistoryString(h, m.order), c.Zeros, c.Ones)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	keys := make([]uint64, 0, len(m.warmups))
	for key := range m.warmups {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, key := range keys {
		k, err = fmt.Fprintf(bw, "warmup %s %d\n", warmupString(key), m.warmups[key])
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Read parses a model previously written with WriteTo.
func Read(r io.Reader) (*Model, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("markov: missing header")
	}
	var order int
	if _, err := fmt.Sscanf(sc.Text(), "markov %d", &order); err != nil {
		return nil, fmt.Errorf("markov: bad header %q: %v", sc.Text(), err)
	}
	m := New(order)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if ws, ok := strings.CutPrefix(line, "warmup "); ok {
			var prefix string
			var count uint64
			if _, err := fmt.Sscanf(ws, "%s %d", &prefix, &count); err != nil {
				return nil, fmt.Errorf("markov: bad warmup row %q: %v", line, err)
			}
			if len(prefix) > order {
				return nil, fmt.Errorf("markov: warmup prefix %q longer than order %d", prefix, order)
			}
			var bits uint32
			for i := 0; i < len(prefix); i++ {
				switch prefix[i] {
				case '1':
					bits |= 1 << uint(i)
				case '0':
				default:
					return nil, fmt.Errorf("markov: bad warmup prefix %q", prefix)
				}
			}
			m.addWarmup(warmupKey(bits, len(prefix)), count)
			continue
		}
		var hs string
		var zeros, ones uint64
		if _, err := fmt.Sscanf(line, "%s %d %d", &hs, &zeros, &ones); err != nil {
			return nil, fmt.Errorf("markov: bad row %q: %v", line, err)
		}
		h, err := bitseq.ParseHistory(hs)
		if err != nil {
			return nil, err
		}
		m.ObserveN(h, false, zeros)
		m.ObserveN(h, true, ones)
	}
	return m, sc.Err()
}
