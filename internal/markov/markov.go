// Package markov implements the Nth-order Markov model of §4.2 of the
// paper: for every N-bit history it records how often the next bit in the
// trace was a 0 or a 1. The model is the statistical substrate from which
// pattern sets ("predict 1", "predict 0", "don't care") are drawn.
//
// Histories follow the bitseq convention: the most recent bit is the LSB;
// string forms are written oldest-first.
package markov

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"fsmpredict/internal/bitseq"
)

// Count is the outcome tally for one history.
type Count struct {
	Zeros uint64
	Ones  uint64
}

// Total returns the number of observations for the history.
func (c Count) Total() uint64 { return c.Zeros + c.Ones }

// P1 returns the empirical probability that the next bit is 1. It returns
// 0 for an empty count.
func (c Count) P1() float64 {
	if t := c.Total(); t > 0 {
		return float64(c.Ones) / float64(t)
	}
	return 0
}

// denseOrder is the largest order stored as a flat 2^order array instead
// of a hash map. A dense order-12 table is 64 KiB — cheap next to the
// per-event hashing it saves on the AddTrace hot path, where every branch
// outcome is one Observe call.
const denseOrder = 12

// Model is an Nth-order Markov model over the binary alphabet. The table
// conceptually has 2^Order rows. Small orders (≤ denseOrder) are stored
// densely — counting is a single array index per event; larger orders keep
// the sparse map the paper notes is essential for per-branch models
// (§7.3), where only observed histories are stored. Create one with New.
type Model struct {
	order    int
	counts   map[uint32]Count // sparse table (order > denseOrder)
	dense    []Count          // dense table (order <= denseOrder)
	distinct int              // observed histories in dense mode
}

// New returns an empty model of the given order (1..24). Orders beyond the
// paper's maximum of 10 are allowed for experimentation but enumeration
// helpers become proportionally more expensive.
func New(order int) *Model {
	if order < 1 || order > 24 {
		panic(fmt.Sprintf("markov: order %d out of range [1,24]", order))
	}
	if order <= denseOrder {
		return &Model{order: order, dense: make([]Count, 1<<uint(order))}
	}
	return &Model{order: order, counts: make(map[uint32]Count)}
}

// Order returns the model's history length N.
func (m *Model) Order() int { return m.order }

// Observe records that history h was followed by bit next.
func (m *Model) Observe(h uint32, next bool) {
	h &= m.mask()
	if m.dense != nil {
		c := &m.dense[h]
		if c.Total() == 0 {
			m.distinct++
		}
		if next {
			c.Ones++
		} else {
			c.Zeros++
		}
		return
	}
	c := m.counts[h]
	if next {
		c.Ones++
	} else {
		c.Zeros++
	}
	m.counts[h] = c
}

// ObserveN records n identical observations. n == 0 records nothing (the
// history is not marked as seen).
func (m *Model) ObserveN(h uint32, next bool, n uint64) {
	if n == 0 {
		return
	}
	h &= m.mask()
	if m.dense != nil {
		c := &m.dense[h]
		if c.Total() == 0 {
			m.distinct++
		}
		if next {
			c.Ones += n
		} else {
			c.Zeros += n
		}
		return
	}
	c := m.counts[h]
	if next {
		c.Ones += n
	} else {
		c.Zeros += n
	}
	m.counts[h] = c
}

// AddTrace slides an Order-wide window over the trace and records every
// transition that has a fully defined history, matching the paper's
// counting in §4.2 (the worked example reproduces P[1|00] = 2/5 for trace
// t).
func (m *Model) AddTrace(b *bitseq.Bits) {
	h := bitseq.NewHistory(m.order)
	for i := 0; i < b.Len(); i++ {
		v := b.At(i)
		if h.Warm() {
			m.Observe(h.Value(), v)
		}
		h.Push(v)
	}
}

// AddBools is AddTrace for a plain boolean slice.
func (m *Model) AddBools(vs []bool) {
	h := bitseq.NewHistory(m.order)
	for _, v := range vs {
		if h.Warm() {
			m.Observe(h.Value(), v)
		}
		h.Push(v)
	}
}

// Count returns the tally for history h (zero if unseen).
func (m *Model) Count(h uint32) Count {
	h &= m.mask()
	if m.dense != nil {
		return m.dense[h]
	}
	return m.counts[h]
}

// Seen reports whether h was observed at least once.
func (m *Model) Seen(h uint32) bool {
	return m.Count(h).Total() > 0
}

// P1 returns the empirical P[next=1 | h] and whether h was ever observed.
func (m *Model) P1(h uint32) (float64, bool) {
	c := m.Count(h)
	if c.Total() == 0 {
		return 0, false
	}
	return c.P1(), true
}

// Total returns the number of observations across all histories.
func (m *Model) Total() uint64 {
	var t uint64
	if m.dense != nil {
		for _, c := range m.dense {
			t += c.Total()
		}
		return t
	}
	for _, c := range m.counts {
		t += c.Total()
	}
	return t
}

// Distinct returns the number of observed histories.
func (m *Model) Distinct() int {
	if m.dense != nil {
		return m.distinct
	}
	return len(m.counts)
}

// Each calls fn for every observed history. Dense models iterate in
// ascending history order; sparse models in map order — callers needing a
// fixed order must sort (or use Histories).
func (m *Model) Each(fn func(h uint32, c Count)) {
	if m.dense != nil {
		for h, c := range m.dense {
			if c.Total() > 0 {
				fn(uint32(h), c)
			}
		}
		return
	}
	for h, c := range m.counts {
		fn(h, c)
	}
}

// Histories returns the observed histories in ascending order.
func (m *Model) Histories() []uint32 {
	hs := make([]uint32, 0, m.Distinct())
	m.Each(func(h uint32, _ Count) { hs = append(hs, h) })
	if m.dense == nil {
		sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	}
	return hs
}

// Merge adds every observation of other into m. The orders must match.
// Merging is how aggregate suite models (§6) and cross-training models
// (§6.3) are built.
func (m *Model) Merge(other *Model) error {
	if other.order != m.order {
		return fmt.Errorf("markov: cannot merge order %d into order %d", other.order, m.order)
	}
	other.Each(func(h uint32, c Count) {
		m.ObserveN(h, false, c.Zeros)
		m.ObserveN(h, true, c.Ones)
	})
	return nil
}

// Clone returns an independent copy of the model.
func (m *Model) Clone() *Model {
	c := New(m.order)
	if m.dense != nil {
		copy(c.dense, m.dense)
		c.distinct = m.distinct
		return c
	}
	m.Each(func(h uint32, v Count) {
		c.ObserveN(h, false, v.Zeros)
		c.ObserveN(h, true, v.Ones)
	})
	return c
}

func (m *Model) mask() uint32 {
	return uint32(1)<<uint(m.order) - 1
}

// WriteTo serializes the model as text: a header line "markov <order>"
// followed by "history zeros ones" rows in ascending history order.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	k, err := fmt.Fprintf(bw, "markov %d\n", m.order)
	n += int64(k)
	if err != nil {
		return n, err
	}
	for _, h := range m.Histories() {
		c := m.Count(h)
		k, err = fmt.Fprintf(bw, "%s %d %d\n", bitseq.HistoryString(h, m.order), c.Zeros, c.Ones)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Read parses a model previously written with WriteTo.
func Read(r io.Reader) (*Model, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("markov: missing header")
	}
	var order int
	if _, err := fmt.Sscanf(sc.Text(), "markov %d", &order); err != nil {
		return nil, fmt.Errorf("markov: bad header %q: %v", sc.Text(), err)
	}
	m := New(order)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		var hs string
		var zeros, ones uint64
		if _, err := fmt.Sscanf(line, "%s %d %d", &hs, &zeros, &ones); err != nil {
			return nil, fmt.Errorf("markov: bad row %q: %v", line, err)
		}
		h, err := bitseq.ParseHistory(hs)
		if err != nil {
			return nil, err
		}
		m.ObserveN(h, false, zeros)
		m.ObserveN(h, true, ones)
	}
	return m, sc.Err()
}
