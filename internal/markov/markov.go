// Package markov implements the Nth-order Markov model of §4.2 of the
// paper: for every N-bit history it records how often the next bit in the
// trace was a 0 or a 1. The model is the statistical substrate from which
// pattern sets ("predict 1", "predict 0", "don't care") are drawn.
//
// Histories follow the bitseq convention: the most recent bit is the LSB;
// string forms are written oldest-first.
package markov

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"fsmpredict/internal/bitseq"
)

// Count is the outcome tally for one history.
type Count struct {
	Zeros uint64
	Ones  uint64
}

// Total returns the number of observations for the history.
func (c Count) Total() uint64 { return c.Zeros + c.Ones }

// P1 returns the empirical probability that the next bit is 1. It returns
// 0 for an empty count.
func (c Count) P1() float64 {
	if t := c.Total(); t > 0 {
		return float64(c.Ones) / float64(t)
	}
	return 0
}

// Model is a sparse Nth-order Markov model over the binary alphabet. The
// table conceptually has 2^Order rows; only observed histories are stored,
// which the paper notes is essential for per-branch models (§7.3). Create
// one with New.
type Model struct {
	order  int
	counts map[uint32]Count
}

// New returns an empty model of the given order (1..24). Orders beyond the
// paper's maximum of 10 are allowed for experimentation but enumeration
// helpers become proportionally more expensive.
func New(order int) *Model {
	if order < 1 || order > 24 {
		panic(fmt.Sprintf("markov: order %d out of range [1,24]", order))
	}
	return &Model{order: order, counts: make(map[uint32]Count)}
}

// Order returns the model's history length N.
func (m *Model) Order() int { return m.order }

// Observe records that history h was followed by bit next.
func (m *Model) Observe(h uint32, next bool) {
	h &= m.mask()
	c := m.counts[h]
	if next {
		c.Ones++
	} else {
		c.Zeros++
	}
	m.counts[h] = c
}

// ObserveN records n identical observations.
func (m *Model) ObserveN(h uint32, next bool, n uint64) {
	h &= m.mask()
	c := m.counts[h]
	if next {
		c.Ones += n
	} else {
		c.Zeros += n
	}
	m.counts[h] = c
}

// AddTrace slides an Order-wide window over the trace and records every
// transition that has a fully defined history, matching the paper's
// counting in §4.2 (the worked example reproduces P[1|00] = 2/5 for trace
// t).
func (m *Model) AddTrace(b *bitseq.Bits) {
	h := bitseq.NewHistory(m.order)
	for i := 0; i < b.Len(); i++ {
		v := b.At(i)
		if h.Warm() {
			m.Observe(h.Value(), v)
		}
		h.Push(v)
	}
}

// AddBools is AddTrace for a plain boolean slice.
func (m *Model) AddBools(vs []bool) {
	h := bitseq.NewHistory(m.order)
	for _, v := range vs {
		if h.Warm() {
			m.Observe(h.Value(), v)
		}
		h.Push(v)
	}
}

// Count returns the tally for history h (zero if unseen).
func (m *Model) Count(h uint32) Count {
	return m.counts[h&m.mask()]
}

// Seen reports whether h was observed at least once.
func (m *Model) Seen(h uint32) bool {
	return m.counts[h&m.mask()].Total() > 0
}

// P1 returns the empirical P[next=1 | h] and whether h was ever observed.
func (m *Model) P1(h uint32) (float64, bool) {
	c := m.counts[h&m.mask()]
	if c.Total() == 0 {
		return 0, false
	}
	return c.P1(), true
}

// Total returns the number of observations across all histories.
func (m *Model) Total() uint64 {
	var t uint64
	for _, c := range m.counts {
		t += c.Total()
	}
	return t
}

// Distinct returns the number of observed histories.
func (m *Model) Distinct() int { return len(m.counts) }

// Histories returns the observed histories in ascending order.
func (m *Model) Histories() []uint32 {
	hs := make([]uint32, 0, len(m.counts))
	for h := range m.counts {
		hs = append(hs, h)
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	return hs
}

// Merge adds every observation of other into m. The orders must match.
// Merging is how aggregate suite models (§6) and cross-training models
// (§6.3) are built.
func (m *Model) Merge(other *Model) error {
	if other.order != m.order {
		return fmt.Errorf("markov: cannot merge order %d into order %d", other.order, m.order)
	}
	for h, c := range other.counts {
		t := m.counts[h]
		t.Zeros += c.Zeros
		t.Ones += c.Ones
		m.counts[h] = t
	}
	return nil
}

// Clone returns an independent copy of the model.
func (m *Model) Clone() *Model {
	c := New(m.order)
	for h, v := range m.counts {
		c.counts[h] = v
	}
	return c
}

func (m *Model) mask() uint32 {
	return uint32(1)<<uint(m.order) - 1
}

// WriteTo serializes the model as text: a header line "markov <order>"
// followed by "history zeros ones" rows in ascending history order.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	k, err := fmt.Fprintf(bw, "markov %d\n", m.order)
	n += int64(k)
	if err != nil {
		return n, err
	}
	for _, h := range m.Histories() {
		c := m.counts[h]
		k, err = fmt.Fprintf(bw, "%s %d %d\n", bitseq.HistoryString(h, m.order), c.Zeros, c.Ones)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Read parses a model previously written with WriteTo.
func Read(r io.Reader) (*Model, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("markov: missing header")
	}
	var order int
	if _, err := fmt.Sscanf(sc.Text(), "markov %d", &order); err != nil {
		return nil, fmt.Errorf("markov: bad header %q: %v", sc.Text(), err)
	}
	m := New(order)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		var hs string
		var zeros, ones uint64
		if _, err := fmt.Sscanf(line, "%s %d %d", &hs, &zeros, &ones); err != nil {
			return nil, fmt.Errorf("markov: bad row %q: %v", line, err)
		}
		h, err := bitseq.ParseHistory(hs)
		if err != nil {
			return nil, err
		}
		m.counts[h] = Count{Zeros: zeros, Ones: ones}
	}
	return m, sc.Err()
}
