package benchfmt

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: fsmpredict
cpu: some CPU @ 2.40GHz
BenchmarkFigure5/gsm-8         	       4	282074709 ns/op	 1202344 B/op	    4631 allocs/op
BenchmarkDesignerEndToEnd-8    	     201	  5979065 ns/op	 1421063 B/op	    4632 allocs/op
BenchmarkRunAll
BenchmarkRunAll-8              	      12	 95123456 ns/op	       0 B/op	       0 allocs/op	 412.3 MB/s
BenchmarkNoMem                 	 1000000	     1042 ns/op
PASS
ok  	fsmpredict	12.345s
`

func TestParse(t *testing.T) {
	benches, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %+v", len(benches), benches)
	}
	b := benches[0]
	if b.Name != "BenchmarkFigure5/gsm" || b.Procs != 8 || b.Iterations != 4 {
		t.Errorf("first = %+v", b)
	}
	if b.NsPerOp != 282074709 || b.BytesPerOp != 1202344 || b.AllocsPerOp != 4631 {
		t.Errorf("first metrics = %+v", b)
	}
	if benches[2].Metrics["MB/s"] != 412.3 {
		t.Errorf("custom metric = %+v", benches[2].Metrics)
	}
	// GOMAXPROCS=1 runs emit no -N suffix; name survives unchanged.
	if benches[3].Name != "BenchmarkNoMem" || benches[3].Procs != 0 {
		t.Errorf("unsuffixed = %+v", benches[3])
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX notanumber 5 ns/op\n",
		"BenchmarkX 3 fast ns/op\n",
		"BenchmarkX 3 5 ns/op trailing\n",
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	benches, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteJSON(&sb, benches); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(benches) {
		t.Fatalf("round trip lost entries: %d vs %d", len(got), len(benches))
	}
	// WriteJSON sorts by name; output must be deterministic.
	var sb2 strings.Builder
	if err := WriteJSON(&sb2, got); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Error("snapshot serialization not stable")
	}
	if got[0].Name > got[len(got)-1].Name {
		t.Error("snapshot not sorted by name")
	}
}

func TestCompare(t *testing.T) {
	base := []Benchmark{
		{Name: "BenchmarkBig", NsPerOp: 1_000_000, AllocsPerOp: 100},
		{Name: "BenchmarkTiny", NsPerOp: 500, AllocsPerOp: 2},
		{Name: "BenchmarkGone", NsPerOp: 1_000_000},
	}
	current := []Benchmark{
		{Name: "BenchmarkBig", NsPerOp: 2_500_000, AllocsPerOp: 250},
		// Tiny regressed 10x but sits under both floors: not reported.
		{Name: "BenchmarkTiny", NsPerOp: 5_000, AllocsPerOp: 20},
		{Name: "BenchmarkNew", NsPerOp: 9_000_000},
	}
	regs := Compare(base, current, CompareOptions{})
	if len(regs) != 2 {
		t.Fatalf("regressions = %+v, want 2 for BenchmarkBig", regs)
	}
	for _, r := range regs {
		if r.Name != "BenchmarkBig" {
			t.Errorf("unexpected regression %+v", r)
		}
	}
	if regs[0].Metric != "allocs/op" || regs[1].Metric != "ns/op" {
		t.Errorf("regression order = %+v", regs)
	}

	// Within the allowed ratio: clean.
	ok := []Benchmark{{Name: "BenchmarkBig", NsPerOp: 1_900_000, AllocsPerOp: 160}}
	if regs := Compare(base, ok, CompareOptions{}); len(regs) != 0 {
		t.Errorf("unexpected regressions %+v", regs)
	}

	// A tighter ratio flags it.
	if regs := Compare(base, ok, CompareOptions{Ratio: 1.5}); len(regs) != 2 {
		t.Errorf("ratio 1.5 regressions = %+v, want 2", regs)
	}
}
