// Package benchfmt parses the text output of `go test -bench` into
// structured records, serializes them as JSON snapshots, and compares a
// fresh run against a checked-in baseline — the machinery behind
// cmd/benchjson and the CI perf-regression smoke step.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark result line. Name excludes the trailing
// -GOMAXPROCS suffix so snapshots compare across machines with
// different core counts; the suffix is preserved in Procs.
type Benchmark struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds any further unit→value pairs (MB/s, custom
	// b.ReportMetric units).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// procsSuffix matches the -N GOMAXPROCS tail go test appends to
// benchmark names when GOMAXPROCS > 1.
var procsSuffix = regexp.MustCompile(`-(\d+)$`)

// Parse reads `go test -bench` text output, ignoring non-benchmark
// lines (package headers, PASS/ok trailers, test log output). It
// returns an error only for a benchmark line it cannot make sense of.
func Parse(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(text, "Benchmark") {
			continue
		}
		fields := strings.Fields(text)
		// A result line is "BenchmarkName iterations value unit [value
		// unit]...". A bare "BenchmarkName" line (no fields) is the
		// pre-run announcement under -v; skip it.
		if len(fields) < 2 {
			continue
		}
		b, err := parseFields(fields)
		if err != nil {
			return nil, fmt.Errorf("benchfmt: line %d: %v", line, err)
		}
		out = append(out, b)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchfmt: %v", err)
	}
	return out, nil
}

func parseFields(fields []string) (Benchmark, error) {
	b := Benchmark{Name: fields[0]}
	if m := procsSuffix.FindStringSubmatch(b.Name); m != nil {
		b.Procs, _ = strconv.Atoi(m[1])
		b.Name = strings.TrimSuffix(b.Name, m[0])
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return b, fmt.Errorf("bad iteration count %q", fields[1])
	}
	b.Iterations = iters
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return b, fmt.Errorf("odd value/unit tail %v", rest)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return b, fmt.Errorf("bad value %q", rest[i])
		}
		switch unit := rest[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, nil
}

// WriteJSON renders a snapshot sorted by name, one indentation style,
// trailing newline — stable bytes for checking into the repo.
func WriteJSON(w io.Writer, benches []Benchmark) error {
	sorted := append([]Benchmark(nil), benches...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	data, err := json.MarshalIndent(sorted, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// ReadJSON loads a snapshot written by WriteJSON.
func ReadJSON(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("benchfmt: bad snapshot: %v", err)
	}
	return out, nil
}

// CompareOptions tunes regression detection.
type CompareOptions struct {
	// Ratio is the allowed current/baseline growth; a metric regresses
	// when current > Ratio × baseline. Zero means 2.
	Ratio float64
	// MinNs skips time comparison for benchmarks whose baseline is
	// faster than this floor — sub-floor timings are dominated by fixed
	// overhead and noise. Zero means 100_000 (100µs).
	MinNs float64
	// MinAllocs likewise skips allocation comparison below this
	// baseline count. Zero means 16.
	MinAllocs float64
}

func (o CompareOptions) withDefaults() CompareOptions {
	if o.Ratio == 0 {
		o.Ratio = 2
	}
	if o.MinNs == 0 {
		o.MinNs = 100_000
	}
	if o.MinAllocs == 0 {
		o.MinAllocs = 16
	}
	return o
}

// Regression is one metric that grew beyond the allowed ratio.
type Regression struct {
	Name     string
	Metric   string // "ns/op" or "allocs/op"
	Baseline float64
	Current  float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.4g -> %.4g (%.2fx)",
		r.Name, r.Metric, r.Baseline, r.Current, r.Current/r.Baseline)
}

// Compare reports every benchmark present in both runs whose time or
// allocation count regressed beyond opt.Ratio. Benchmarks present in
// only one run are ignored: baselines stay valid when benchmarks are
// added, and a deleted benchmark cannot regress.
func Compare(baseline, current []Benchmark, opt CompareOptions) []Regression {
	opt = opt.withDefaults()
	base := make(map[string]Benchmark, len(baseline))
	for _, b := range baseline {
		base[b.Name] = b
	}
	var regs []Regression
	for _, cur := range current {
		b, ok := base[cur.Name]
		if !ok {
			continue
		}
		if b.NsPerOp >= opt.MinNs && cur.NsPerOp > opt.Ratio*b.NsPerOp {
			regs = append(regs, Regression{cur.Name, "ns/op", b.NsPerOp, cur.NsPerOp})
		}
		if b.AllocsPerOp >= opt.MinAllocs && cur.AllocsPerOp > opt.Ratio*b.AllocsPerOp {
			regs = append(regs, Regression{cur.Name, "allocs/op", b.AllocsPerOp, cur.AllocsPerOp})
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Name != regs[j].Name {
			return regs[i].Name < regs[j].Name
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs
}
