// Benchmarks regenerating every figure of the paper's evaluation. Each
// benchmark runs the corresponding experiment end to end and reports the
// headline numbers as custom metrics, so `go test -bench=.` both times
// the harness and reproduces the results (shape, not absolute numbers —
// the substrate is a synthetic trace generator, not the authors'
// Alpha/ATOM testbed). See EXPERIMENTS.md for recorded outputs.
package fsmpredict_test

import (
	"context"
	"strconv"
	"sync/atomic"
	"time"

	"testing"

	"fsmpredict"
	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/bpred"
	"fsmpredict/internal/confidence"
	"fsmpredict/internal/counters"
	"fsmpredict/internal/experiments"
	"fsmpredict/internal/fsm"
	"fsmpredict/internal/gasearch"
	"fsmpredict/internal/gating"
	"fsmpredict/internal/simpoint"
	"fsmpredict/internal/stats"
	"fsmpredict/internal/trace"
	"fsmpredict/internal/tracestore"
	"fsmpredict/internal/vhdl"
	"fsmpredict/internal/workload"
)

// benchConfig sits between the test scale and the paper scale: big
// enough for stable shapes, small enough to iterate.
func benchConfig() experiments.Config {
	return experiments.Config{
		BranchEvents: 150_000,
		LoadEvents:   80_000,
		MaxCustom:    12,
		Order:        9,
		Histories:    []int{2, 4, 6, 8, 10},
		TableLog2:    11,
	}
}

// BenchmarkFigure1Pipeline times the full §4 design flow on the paper's
// worked example (Figure 1).
func BenchmarkFigure1Pipeline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		if r.Design.Machine.NumStates() != 3 {
			b.Fatalf("unexpected machine: %s", r.Design.Machine)
		}
	}
}

// BenchmarkFigure2 regenerates the value-prediction confidence panels
// (Figure 2): SUD sweep versus cross-trained FSM curves per program.
func BenchmarkFigure2(b *testing.B) {
	for _, prog := range []string{"gcc", "go", "groff", "li", "perl"} {
		b.Run(prog, func(b *testing.B) {
			var r *experiments.Figure2Result
			var err error
			for i := 0; i < b.N; i++ {
				r, err = experiments.Figure2(prog, benchConfig())
				if err != nil {
					b.Fatal(err)
				}
			}
			bestFSM, bestSUD := -1.0, -1.0
			for _, h := range []int{2, 4, 6, 8, 10} {
				for _, p := range r.CurvePoints(h) {
					if p.X >= 0.8 && p.Y > bestFSM {
						bestFSM = p.Y
					}
				}
			}
			for _, p := range r.SUDFrontier() {
				if p.X >= 0.8 && p.Y > bestSUD {
					bestSUD = p.Y
				}
			}
			b.ReportMetric(bestFSM, "fsm-cov@80%acc")
			b.ReportMetric(bestSUD, "sud-cov@80%acc")
		})
	}
}

// BenchmarkFigure4AreaModel regenerates the synthesized-area-versus-state
// scatter and the linear fit (Figure 4).
func BenchmarkFigure4AreaModel(b *testing.B) {
	var r *experiments.Figure4Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Figure4(benchConfig(), 1.0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Fit.Slope, "GE/state")
	b.ReportMetric(r.Fit.R2, "R2")
	b.ReportMetric(float64(len(r.Points)), "machines")
}

// BenchmarkFigure5 regenerates the misprediction-versus-area panels
// (Figure 5) for all six branch benchmarks.
func BenchmarkFigure5(b *testing.B) {
	cfg := benchConfig()
	f4, err := experiments.Figure4(cfg, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	area := f4.AreaModel()
	for _, prog := range []string{"compress", "gs", "gsm", "g721", "ijpeg", "vortex"} {
		b.Run(prog, func(b *testing.B) {
			var r *experiments.Figure5Result
			for i := 0; i < b.N; i++ {
				r, err = experiments.Figure5(prog, cfg, area)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.XScale.Y, "xscale-miss")
			b.ReportMetric(experiments.MinMiss(r.CustomDiff), "custom-miss")
			b.ReportMetric(experiments.MinMiss(r.Gshare), "gshare-best")
			b.ReportMetric(experiments.MinMiss(r.LGC), "lgc-best")
		})
	}
}

// BenchmarkFigure6And7 regenerates the example machines of Figures 6 and
// 7 and verifies the capture-from-any-state property.
func BenchmarkFigure6And7(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		f6, err := experiments.Figure6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, ok := f6.CapturesFromAnyState(); !ok {
			b.Fatal("figure 6 machine does not capture its pattern")
		}
		f7, err := experiments.Figure7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, ok := f7.CapturesFromAnyState(); !ok {
			b.Fatal("figure 7 machine does not capture its pattern")
		}
	}
}

// BenchmarkDesignerEndToEnd times one order-9 design-flow run on a
// realistic per-branch model — the §5 "20 seconds to 2 minutes for all
// FSM predictors of a program" measurement, per machine.
func BenchmarkDesignerEndToEnd(b *testing.B) {
	// A correlated-branch style model: outcome = bit at lag 2, plus noise.
	model := fsmpredict.NewModel(9)
	for h := uint32(0); h < 1<<9; h++ {
		taken := h>>1&1 == 1
		model.ObserveN(h, taken, 50)
		model.ObserveN(h, !taken, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := fsmpredict.DesignFromModel(model, fsmpredict.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if d.Machine.NumStates() == 0 {
			b.Fatal("empty machine")
		}
	}
}

// BenchmarkAblationDontCares measures the design-size effect of the 1%
// don't-care budget (§4.3), the design choice DESIGN.md calls out.
func BenchmarkAblationDontCares(b *testing.B) {
	mkModel := func() *fsmpredict.MarkovModel {
		m := fsmpredict.NewModel(8)
		// Skewed popularity: popular histories follow a compact function
		// (bit 2), while the rare tail deviates. With the 1% budget the
		// whole tail becomes don't-care and the machine collapses; without
		// it every rare deviation must be honoured exactly.
		for h := uint32(0); h < 1<<8; h++ {
			n := uint64(1)
			outcome := h>>2&1 == 1
			if h%7 == 0 {
				n = 1000
			} else if h%13 == 0 {
				outcome = !outcome // rare deviations
			}
			m.ObserveN(h, outcome, n)
		}
		return m
	}
	for _, cfg := range []struct {
		name   string
		budget float64
	}{{"with-dc", 0.01}, {"no-dc", -1}} {
		b.Run(cfg.name, func(b *testing.B) {
			var states int
			for i := 0; i < b.N; i++ {
				d, err := fsmpredict.DesignFromModel(mkModel(), fsmpredict.Options{
					DontCareBudget: cfg.budget, KeepUnseen: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				states = d.Machine.NumStates()
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}

// BenchmarkSeriesOutput exercises the CSV emission used by the cmd tools.
func BenchmarkSeriesOutput(b *testing.B) {
	s := []stats.Series{{Name: "x", Points: make([]stats.Point, 1000)}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(stats.CSV(s)) == 0 {
			b.Fatal("empty csv")
		}
	}
}

// BenchmarkSearchVsDesigner is the §3.2 ablation: the constructive design
// flow versus an Emer/Gloy-style genetic search, on a lag-3 correlated
// trace. The designer needs one construction; the GA needs thousands of
// trace evaluations to reach the same quality.
func BenchmarkSearchVsDesigner(b *testing.B) {
	trace := make([]bool, 4000)
	state := uint32(0x9e3779b9)
	next := func() uint32 { state = state*1664525 + 1013904223; return state }
	for i := range trace {
		if i < 3 {
			trace[i] = next()&1 == 1
		} else {
			trace[i] = trace[i-3] != (next()%20 == 0)
		}
	}
	b.Run("designer", func(b *testing.B) {
		var miss float64
		for i := 0; i < b.N; i++ {
			d, err := fsmpredict.DesignFromBools(trace, fsmpredict.Options{Order: 3})
			if err != nil {
				b.Fatal(err)
			}
			miss = d.Machine.Simulate(trace, 3).MissRate()
		}
		b.ReportMetric(miss, "miss-rate")
	})
	b.Run("ga", func(b *testing.B) {
		var miss float64
		for i := 0; i < b.N; i++ {
			res, err := gasearch.Search(trace, gasearch.Options{
				States: 8, Population: 60, Generations: 60, Seed: 3, Warmup: 3,
			})
			if err != nil {
				b.Fatal(err)
			}
			miss = res.BestMissRate
		}
		b.ReportMetric(miss, "miss-rate")
	})
}

// BenchmarkPPMBaseline runs the Chen et al. PPM predictor (§3.2) over the
// branch suite for comparison with Figure 5's architectures.
func BenchmarkPPMBaseline(b *testing.B) {
	for _, prog := range []string{"gsm", "ijpeg", "vortex"} {
		b.Run(prog, func(b *testing.B) {
			p, err := workload.ByName(prog)
			if err != nil {
				b.Fatal(err)
			}
			events := p.Generate(workload.Test, 100_000)
			var miss float64
			for i := 0; i < b.N; i++ {
				miss = bpred.Run(bpred.NewPPM(10), events).MissRate()
			}
			b.ReportMetric(miss, "ppm-miss")
		})
	}
}

// BenchmarkUpdatePolicyAblation compares the paper's update-all policy
// (§7.3) against updating only on tag matches.
func BenchmarkUpdatePolicyAblation(b *testing.B) {
	p, err := workload.ByName("vortex")
	if err != nil {
		b.Fatal(err)
	}
	train := p.Generate(workload.Train, 100_000)
	test := p.Generate(workload.Test, 100_000)
	entries, err := bpred.TrainCustom(train, bpred.TrainOptions{
		MaxEntries: 6, Order: 9, MinExecutions: 64,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name    string
		matched bool
	}{{"update-all", false}, {"matched-only", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var miss float64
			for i := 0; i < b.N; i++ {
				c := bpred.NewCustom(entries)
				c.UpdateMatchedOnly = mode.matched
				miss = bpred.Run(c, test).MissRate()
			}
			b.ReportMetric(miss, "miss-rate")
		})
	}
}

// BenchmarkHistorySetVsFSM quantifies what the FSM compilation buys over
// the Burtscher/Zorn history-table baseline (§3.2): identical decisions
// from a handful of states instead of a 2^N-entry table.
func BenchmarkHistorySetVsFSM(b *testing.B) {
	prog, err := workload.LoadByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	train := prog.Generate(workload.Train, 60_000)
	test := prog.Generate(workload.Test, 60_000)
	model := confidence.PerEntryCorrectnessModel(train, 11, 8)
	set, err := confidence.NewHistorySet(model, 0.9)
	if err != nil {
		b.Fatal(err)
	}
	design, err := fsmpredict.DesignFromModel(model, fsmpredict.Options{
		BiasThreshold: 0.9, DontCareBudget: -1, KeepUnseen: true, KeepStartup: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	machine := design.Machine
	b.Run("history-table", func(b *testing.B) {
		var r confidence.Result
		for i := 0; i < b.N; i++ {
			r = confidence.Evaluate(test, 11, set.Instance)
		}
		b.ReportMetric(float64(set.TableBits()), "table-bits")
		b.ReportMetric(r.Coverage(), "coverage")
	})
	b.Run("compiled-fsm", func(b *testing.B) {
		var r confidence.Result
		for i := 0; i < b.N; i++ {
			r = confidence.Evaluate(test, 11, func() counters.Predictor {
				return machine.NewRunner()
			})
		}
		b.ReportMetric(float64(machine.NumStates()), "states")
		b.ReportMetric(r.Coverage(), "coverage")
	})
}

// BenchmarkPipelineGating measures §2.5 confidence-directed fetch gating:
// a designed FSM estimator versus a resetting counter, reporting how much
// wrong-path fetch each avoids (recall) and how often each stalls in vain.
func BenchmarkPipelineGating(b *testing.B) {
	prog, err := workload.ByName("ijpeg")
	if err != nil {
		b.Fatal(err)
	}
	train := prog.Generate(workload.Train, 100_000)
	test := prog.Generate(workload.Test, 100_000)
	model := gating.CorrectnessModel(bpred.NewXScale(), train, 8)
	design, err := fsmpredict.DesignFromModel(model, fsmpredict.Options{BiasThreshold: 0.7})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fsm", func(b *testing.B) {
		var r gating.Result
		for i := 0; i < b.N; i++ {
			r = gating.Simulate(bpred.NewXScale(), design.Machine.NewRunner(), test)
		}
		b.ReportMetric(r.Recall(), "recall")
		b.ReportMetric(r.Precision(), "precision")
	})
	b.Run("resetting-counter", func(b *testing.B) {
		var r gating.Result
		for i := 0; i < b.N; i++ {
			r = gating.Simulate(bpred.NewXScale(), counters.NewResetting(8, 4), test)
		}
		b.ReportMetric(r.Recall(), "recall")
		b.ReportMetric(r.Precision(), "precision")
	})
}

// BenchmarkAblationStateEncoding compares state encodings in the
// synthesis model (§4.8: synthesis "includes finding a good encoding"),
// reporting the mean area across a batch of generated machines.
func BenchmarkAblationStateEncoding(b *testing.B) {
	prog, err := workload.ByName("gsm")
	if err != nil {
		b.Fatal(err)
	}
	events := prog.Generate(workload.Train, 100_000)
	entries, err := bpred.TrainCustom(events, bpred.TrainOptions{
		MaxEntries: 8, Order: 9, MinExecutions: 64,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		syn  func(*fsmpredict.Machine) (*vhdl.Synthesis, error)
	}{
		{"binary", vhdl.Synthesize},
		{"best-of-encodings", vhdl.SynthesizeBest},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				var total float64
				for _, e := range entries {
					s, err := mode.syn(e.Machine)
					if err != nil {
						b.Fatal(err)
					}
					total += s.Area
				}
				mean = total / float64(len(entries))
			}
			b.ReportMetric(mean, "mean-GE")
		})
	}
}

// BenchmarkSimPointSampling measures the §5 trace-sampling substrate:
// cluster a long trace and train custom predictors from the sample,
// reporting the quality delta against full-trace training.
func BenchmarkSimPointSampling(b *testing.B) {
	prog, err := workload.ByName("vortex")
	if err != nil {
		b.Fatal(err)
	}
	train := prog.Generate(workload.Train, 160_000)
	test := prog.Generate(workload.Test, 80_000)
	opt := bpred.TrainOptions{MaxEntries: 6, Order: 9, MinExecutions: 64}
	fullEntries, err := bpred.TrainCustom(train, opt)
	if err != nil {
		b.Fatal(err)
	}
	fullMiss := bpred.Run(bpred.NewCustom(fullEntries), test).MissRate()
	var sampleMiss, ratio float64
	for i := 0; i < b.N; i++ {
		res, err := simpoint.Analyze(train, simpoint.Options{IntervalLen: 8000, K: 4, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		sample := res.Sample(train)
		ratio = float64(len(sample)) / float64(len(train))
		entries, err := bpred.TrainCustom(sample, opt)
		if err != nil {
			b.Fatal(err)
		}
		sampleMiss = bpred.Run(bpred.NewCustom(entries), test).MissRate()
	}
	b.ReportMetric(fullMiss, "full-miss")
	b.ReportMetric(sampleMiss, "sample-miss")
	b.ReportMetric(ratio, "sample-frac")
}

// BenchmarkServiceThroughput drives the predictor-design service with a
// mixed workload of per-program outcome traces from many goroutines,
// reporting end-to-end designs per second and the cache hit rate — the
// headline numbers for the fsmserved daemon under load.
func BenchmarkServiceThroughput(b *testing.B) {
	var traces []*bitseq.Bits
	for _, prog := range []string{"compress", "gs", "gsm", "g721", "ijpeg", "vortex"} {
		p, err := workload.ByName(prog)
		if err != nil {
			b.Fatal(err)
		}
		all := trace.Outcomes(p.Generate(workload.Train, 16_000)).Bools()
		// Four distinct windows per program: 24 distinct cache keys total.
		const window = 3000
		for i := 0; i+window <= len(all) && i < 4*window; i += window {
			traces = append(traces, bitseq.FromBools(all[i:i+window]))
		}
	}
	svc := fsmpredict.NewService(fsmpredict.ServiceConfig{QueueDepth: 1 << 16})
	defer svc.Close()
	opt := fsmpredict.Options{Order: 6}

	var designs, hits atomic.Uint64
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			_, hit, err := svc.Design(context.Background(), traces[i%len(traces)], opt)
			if err != nil {
				b.Fatal(err)
			}
			designs.Add(1)
			if hit {
				hits.Add(1)
			}
			i++
		}
	})
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(designs.Load())/elapsed, "designs/s")
	}
	if n := designs.Load(); n > 0 {
		b.ReportMetric(float64(hits.Load())/float64(n), "hit-rate")
	}
}

// BenchmarkBatchDesignThroughput drives the coalescing batch plane with
// duplicate-heavy design traffic and the cache disabled, so every item
// must be served by pipeline work and the measured rate is pure
// batching effect: duplicates within a flush collapse into one design
// run per distinct request. Reports items per second and the achieved
// coalesce ratio (items per pipeline pass).
func BenchmarkBatchDesignThroughput(b *testing.B) {
	var traces []*bitseq.Bits
	for _, prog := range []string{"gsm", "vortex"} {
		p, err := workload.ByName(prog)
		if err != nil {
			b.Fatal(err)
		}
		all := trace.Outcomes(p.Generate(workload.Train, 8_000)).Bools()
		const window = 3000
		for i := 0; i+window <= len(all) && i < 2*window; i += window {
			traces = append(traces, bitseq.FromBools(all[i:i+window]))
		}
	}
	svc := fsmpredict.NewService(fsmpredict.ServiceConfig{
		CacheEntries: -1,
		QueueDepth:   1 << 16,
		BatchMaxSize: 256,
		BatchMaxWait: time.Millisecond,
	})
	defer svc.Close()
	opt := fsmpredict.Options{Order: 6}

	var items atomic.Uint64
	b.SetParallelism(32) // many requests in flight so groups actually fill
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			idx := i % len(traces)
			_, _, err := svc.DesignBatch(context.Background(), traces[idx], opt, "trace-"+strconv.Itoa(idx))
			if err != nil {
				b.Fatal(err)
			}
			items.Add(1)
			i++
		}
	})
	elapsed := time.Since(start).Seconds()
	design, _ := svc.BatchStats()
	if elapsed > 0 {
		b.ReportMetric(float64(items.Load())/elapsed, "items/s")
	}
	if design.Flushes > 0 {
		b.ReportMetric(float64(design.Flushed)/float64(design.Flushes), "items/flush")
	}
}

// BenchmarkSpanWorkloadTraces measures the span kernel on the suite's
// own branch traces — not the synthetic bias sweep — reporting each
// program's skippable-event coverage alongside block and span kernel
// throughput. The win here is whatever run structure the workloads
// really have; EXPERIMENTS.md records both this and the bias sweep.
func BenchmarkSpanWorkloadTraces(b *testing.B) {
	for _, prog := range []string{"compress", "gs", "gsm", "g721", "ijpeg", "vortex"} {
		p, err := workload.ByName(prog)
		if err != nil {
			b.Fatal(err)
		}
		packed := tracestore.Pack(p.Generate(workload.Train, 2_000_000))
		words, n := packed.Outcomes().Words(), packed.Outcomes().Len()
		runs := packed.SpanIndex()
		covered := float64(bitseq.RunsCovered(runs)) / float64(n)
		m := counters.SUDConfig{Max: 3, Inc: 1, Dec: 1, Threshold: 2}.Machine()
		tab, err := fsm.CompileBlockTable(m)
		if err != nil {
			b.Fatal(err)
		}
		bytes := int64(n) / 8
		b.Run("block/"+prog, func(b *testing.B) {
			b.SetBytes(bytes)
			for i := 0; i < b.N; i++ {
				tab.SimulatePacked(words, n, 0)
			}
		})
		b.Run("span/"+prog, func(b *testing.B) {
			b.SetBytes(bytes)
			b.ReportMetric(covered, "run-coverage")
			for i := 0; i < b.N; i++ {
				tab.SimulatePackedSpans(words, n, 0, runs)
			}
		})
	}
}
