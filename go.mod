module fsmpredict

go 1.22
